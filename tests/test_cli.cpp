/// \file test_cli.cpp
/// \brief The `leq` CLI end to end, in-process: every subcommand on the
/// checked-in examples/eqn/ pairs, the error paths, JSON validity, and the
/// batch mode's thread-count determinism.

#include "cli/cli.hpp"

#include "cli/batch.hpp"
#include "cli/json.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace leq;

std::string example(const std::string& file) {
    return std::string(LEQ_SOURCE_DIR) + "/examples/eqn/" + file;
}

struct cli_run {
    int exit_code = 0;
    std::string out;
    std::string err;
};

cli_run run(const std::vector<std::string>& args) {
    std::ostringstream out, err;
    cli_run r;
    r.exit_code = run_leq_cli(args, out, err);
    r.out = out.str();
    r.err = err.str();
    return r;
}

// ---------------------------------------------------------------------------
// a minimal JSON syntax checker: enough to prove the stats lines are valid
// JSON (objects, arrays, strings with escapes, numbers, true/false/null)
// ---------------------------------------------------------------------------

struct json_checker {
    const std::string& text;
    std::size_t pos = 0;

    void ws() {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t')) {
            ++pos;
        }
    }
    bool eat(char c) {
        ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }
    bool string() {
        if (!eat('"')) { return false; }
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size()) { return false; }
            }
            ++pos;
        }
        return eat('"');
    }
    bool number() {
        ws();
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
        }
        return pos > start;
    }
    bool literal(const char* word) {
        ws();
        const std::size_t len = std::string(word).size();
        if (text.compare(pos, len, word) == 0) {
            pos += len;
            return true;
        }
        return false;
    }
    bool value() {
        ws();
        if (pos >= text.size()) { return false; }
        if (text[pos] == '"') { return string(); }
        if (text[pos] == '{') { return object(); }
        if (text[pos] == '[') { return array(); }
        if (literal("true") || literal("false") || literal("null")) {
            return true;
        }
        return number();
    }
    bool object() {
        if (!eat('{')) { return false; }
        if (eat('}')) { return true; }
        do {
            if (!string() || !eat(':') || !value()) { return false; }
        } while (eat(','));
        return eat('}');
    }
    bool array() {
        if (!eat('[')) { return false; }
        if (eat(']')) { return true; }
        do {
            if (!value()) { return false; }
        } while (eat(','));
        return eat(']');
    }
};

/// Whole line is exactly one valid JSON object.
bool valid_json_object(const std::string& line) {
    json_checker checker{line};
    if (!checker.object()) { return false; }
    checker.ws();
    return checker.pos == line.size();
}

/// `"key":<raw value>` lookup on a flat rendering (no nested-name clashes
/// in the CLI's field set).
std::string raw_field(const std::string& json, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos) { return {}; }
    std::size_t from = at + needle.size();
    std::size_t to = from;
    int depth = 0;
    while (to < json.size()) {
        const char c = json[to];
        if (depth == 0 && (c == ',' || c == '}')) { break; }
        if (c == '{' || c == '[') { ++depth; }
        if (c == '}' || c == ']') { --depth; }
        ++to;
    }
    return json.substr(from, to - from);
}

std::string first_line(const std::string& text) {
    return text.substr(0, text.find('\n'));
}

std::string temp_path(const char* name) {
    return testing::TempDir() + name;
}

std::string corpus(const std::string& file) {
    return std::string(LEQ_SOURCE_DIR) + "/bench/corpus/" + file;
}

/// Blank the `"solve_jobs":N` value — the one field that legitimately
/// differs between `--solve-jobs N` runs of the same instance.
std::string mask_solve_jobs(std::string text) {
    const std::string needle = "\"solve_jobs\":";
    std::size_t at = text.find(needle);
    while (at != std::string::npos) {
        std::size_t to = at + needle.size();
        while (to < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[to])) != 0) {
            text[to] = '#';
            ++to;
        }
        at = text.find(needle, to);
    }
    return text;
}

// ---------------------------------------------------------------------------
// solve
// ---------------------------------------------------------------------------

TEST(cli_solve, solvable_kiss_pair_emits_valid_json) {
    const cli_run r = run({"solve", example("passthrough_f.kiss"),
                           example("passthrough_s.kiss")});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "status"), "\"ok\"");
    EXPECT_EQ(raw_field(line, "solution"), "\"ok\"");
    EXPECT_EQ(raw_field(line, "csf_states"), "2");
    // the stats block surfaces the relation layer
    EXPECT_NE(raw_field(line, "stats"), "");
    EXPECT_NE(raw_field(line, "images"), "0");
    EXPECT_NE(raw_field(line, "seconds"), "");
}

TEST(cli_solve, unsolvable_kiss_pair_reports_empty) {
    const cli_run r = run({"solve", example("inverter_f.kiss"),
                           example("inverter_s.kiss")});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "status"), "\"ok\"");
    EXPECT_EQ(raw_field(line, "solution"), "\"empty\"");
}

TEST(cli_solve, blif_pair_and_every_flow) {
    for (const char* flow : {"partitioned", "monolithic", "explicit"}) {
        const cli_run r = run({"solve", example("delay_f.blif"),
                               example("delay_s.blif"), "--flow", flow});
        EXPECT_EQ(r.exit_code, 0) << flow << ": " << r.err;
        const std::string line = first_line(r.out);
        EXPECT_TRUE(valid_json_object(line)) << line;
        EXPECT_EQ(raw_field(line, "solution"), "\"ok\"") << flow;
        EXPECT_EQ(raw_field(line, "flow"),
                  "\"" + std::string(flow) + "\"");
    }
}

TEST(cli_solve, knob_flags_reach_the_relation_layer) {
    const cli_run r =
        run({"solve", example("passthrough_f.kiss"),
             example("passthrough_s.kiss"), "--strategy", "chaining",
             "--policy", "affinity", "--cluster-limit", "100",
             "--no-early-quant", "--collect-stats", "--no-timing"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "strategy"), "\"chaining\"");
    EXPECT_EQ(raw_field(line, "policy"), "\"affinity\"");
    EXPECT_EQ(raw_field(line, "cluster_limit"), "100");
    EXPECT_EQ(raw_field(line, "early_quantification"), "false");
    EXPECT_NE(raw_field(line, "peak_intermediate"), "");
    EXPECT_EQ(raw_field(line, "seconds"), ""); // --no-timing
}

TEST(cli_solve, saturation_strategy_is_accepted_and_echoed) {
    // the fourth strategy parses, shows up in the options echo, and
    // surfaces its fires counter in the stats block (saturation runs only)
    const cli_run r =
        run({"solve", "gen:chaincounter:2", "--strategy", "saturation",
             "--no-timing"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "strategy"), "\"saturation\"");
    EXPECT_EQ(raw_field(line, "status"), "\"ok\"");
    EXPECT_NE(raw_field(line, "saturation_fires"), "") << line;

    // under any other strategy the counter stays out of the stats block
    const cli_run frontier =
        run({"solve", "gen:chaincounter:2", "--no-timing"});
    EXPECT_EQ(frontier.exit_code, 0) << frontier.err;
    EXPECT_EQ(raw_field(first_line(frontier.out), "saturation_fires"), "");
}

TEST(cli_solve, solve_jobs_flag_is_echoed_and_counters_gated) {
    const cli_run r = run({"solve", "gen:chaincounter:2", "--solve-jobs",
                           "2", "--no-timing"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "solve_jobs"), "2");
    // the deterministic parallel counters ride in the stats block
    EXPECT_NE(raw_field(line, "parallel_chunks"), "") << line;
    EXPECT_NE(raw_field(line, "transfer_nodes"), "") << line;

    // without the flag the engine is sequential and the counters stay out
    const cli_run seq = run({"solve", "gen:chaincounter:2", "--no-timing"});
    EXPECT_EQ(seq.exit_code, 0) << seq.err;
    const std::string seq_line = first_line(seq.out);
    EXPECT_EQ(raw_field(seq_line, "solve_jobs"), "0");
    EXPECT_EQ(raw_field(seq_line, "parallel_chunks"), "");
    EXPECT_EQ(raw_field(seq_line, "transfer_nodes"), "");
    // and apart from that echo and those counters, the outputs agree
    EXPECT_EQ(raw_field(line, "csf_states"), raw_field(seq_line, "csf_states"));
    EXPECT_EQ(raw_field(line, "subset_states"),
              raw_field(seq_line, "subset_states"));
    EXPECT_EQ(raw_field(line, "images"), raw_field(seq_line, "images"));
}

TEST(cli_errors, solve_jobs_rejects_zero_and_garbage) {
    // 0 would silently mean "sequential", masking typos — the sequential
    // engine is the absence of the flag
    const cli_run zero = run({"solve", "gen:chaincounter:2", "--solve-jobs",
                              "0"});
    EXPECT_EQ(zero.exit_code, 2);
    EXPECT_NE(zero.err.find("--solve-jobs must be at least 1"),
              std::string::npos)
        << zero.err;
    const cli_run garbage = run({"solve", "gen:chaincounter:2",
                                 "--solve-jobs", "2x"});
    EXPECT_EQ(garbage.exit_code, 2);
}

TEST(cli_solve, solve_jobs_output_byte_identical_on_the_bench_corpus) {
    // the PR-10 acceptance pin: every solve pair of the bench corpus,
    // solved at --solve-jobs 1/2/4/8, emits byte-identical JSON (the
    // solve_jobs echo itself masked), and masking it away also matches the
    // sequential engine byte for byte
    const std::vector<std::pair<std::string, std::string>> pairs = {
        {corpus("counter_x256_f.blif"), corpus("counter_x256_s.blif")},
        {corpus("counter9_f.kiss"), corpus("counter9_s.kiss")},
        {corpus("arbiter_x16_f.blif"), corpus("arbiter_x16_s.blif")},
    };
    for (const auto& [f, s] : pairs) {
        const cli_run seq = run({"solve", f, s, "--no-timing"});
        ASSERT_EQ(seq.exit_code, 0) << seq.err;
        const std::string reference = mask_solve_jobs(seq.out);
        std::string ref_chunks, ref_transfer;
        for (const char* jobs : {"1", "2", "4", "8"}) {
            const cli_run r =
                run({"solve", f, s, "--no-timing", "--solve-jobs", jobs});
            ASSERT_EQ(r.exit_code, 0) << r.err;
            // the counters are gated on the flag, so mask them out of the
            // parallel run before the byte comparison with the sequential
            // reference
            std::string out = mask_solve_jobs(r.out);
            const std::string chunks =
                raw_field(first_line(r.out), "parallel_chunks");
            const std::string transfer =
                raw_field(first_line(r.out), "transfer_nodes");
            const std::string gated = ",\"parallel_chunks\":" + chunks +
                                      ",\"transfer_nodes\":" + transfer;
            const std::size_t at = out.find(gated);
            ASSERT_NE(at, std::string::npos) << out;
            out.erase(at, gated.size());
            EXPECT_EQ(out, reference) << f << " jobs " << jobs;
            // and the gated counters themselves are N-independent
            if (jobs[0] == '1') {
                ref_chunks = chunks;
                ref_transfer = transfer;
            } else {
                EXPECT_EQ(chunks, ref_chunks) << f << " jobs " << jobs;
                EXPECT_EQ(transfer, ref_transfer) << f << " jobs " << jobs;
            }
        }
    }
}

TEST(cli_solve, gen_spec_generates_and_solves) {
    const cli_run r = run({"solve", "gen:counter:7"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "name"), "\"counter:7\"");
    EXPECT_EQ(raw_field(line, "status"), "\"ok\"");
}

TEST(cli_solve, gen_spec_scale_suffix_grows_the_instance) {
    const cli_run r = run({"solve", "gen:counter:7:8"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "name"), "\"counter:7:8\"");
    EXPECT_EQ(raw_field(line, "status"), "\"ok\"");
    // scale 8 adds three counter bits over the scale-1 instance, so the
    // candidate space is strictly larger
    const cli_run base = run({"solve", "gen:counter:7"});
    EXPECT_EQ(base.exit_code, 0) << base.err;
    EXPECT_NE(raw_field(first_line(base.out), "subset_states"),
              raw_field(line, "subset_states"));
}

TEST(cli_solve, memory_flags_reach_the_bdd_manager) {
    const cli_run r =
        run({"solve", example("passthrough_f.kiss"),
             example("passthrough_s.kiss"), "--cache-bits", "12",
             "--max-cache-bits", "14", "--gc-threshold", "20000",
             "--no-timing"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "cache_bits"), "12");
    EXPECT_EQ(raw_field(line, "max_cache_bits"), "14");
    EXPECT_EQ(raw_field(line, "gc_threshold"), "20000");
}

TEST(cli_solve, cache_bits_flag_raises_the_cap_when_needed) {
    // --cache-bits above the default cap must lift max_cache_bits with it
    const cli_run r = run({"solve", example("passthrough_f.kiss"),
                           example("passthrough_s.kiss"), "--cache-bits",
                           "26", "--no-timing"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_EQ(raw_field(line, "cache_bits"), "26");
    EXPECT_EQ(raw_field(line, "max_cache_bits"), "26");
}

TEST(cli_solve, cache_ways_flag_is_echoed_and_solver_output_is_unchanged) {
    // the cache only decides what gets memoized, never what gets computed:
    // every solver-visible field must be byte-identical across geometries
    std::string reference_solution;
    std::string reference_subset;
    std::string reference_csf;
    std::string reference_live;
    for (const char* ways : {"1", "2", "4", "8"}) {
        const cli_run r = run({"solve", example("passthrough_f.kiss"),
                               example("passthrough_s.kiss"), "--cache-ways",
                               ways, "--collect-stats", "--no-timing"});
        EXPECT_EQ(r.exit_code, 0) << r.err;
        const std::string line = first_line(r.out);
        EXPECT_TRUE(valid_json_object(line)) << line;
        EXPECT_EQ(raw_field(line, "cache_ways"), ways);
        const std::string solution = raw_field(line, "status");
        const std::string subset = raw_field(line, "subset_states");
        const std::string csf = raw_field(line, "csf_states");
        const std::string live = raw_field(line, "live_nodes");
        if (std::string(ways) == "1") {
            reference_solution = solution;
            reference_subset = subset;
            reference_csf = csf;
            reference_live = live;
        } else {
            EXPECT_EQ(solution, reference_solution) << "ways=" << ways;
            EXPECT_EQ(subset, reference_subset) << "ways=" << ways;
            EXPECT_EQ(csf, reference_csf) << "ways=" << ways;
            EXPECT_EQ(live, reference_live) << "ways=" << ways;
        }
    }
}

TEST(cli_solve, stats_line_carries_the_per_op_cache_breakdown) {
    const cli_run r =
        run({"solve", example("passthrough_f.kiss"),
             example("passthrough_s.kiss"), "--collect-stats",
             "--no-timing"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_NE(raw_field(line, "cache_lookups"), "");
    EXPECT_NE(raw_field(line, "cache_hits"), "");
    // the breakdown object names only ops that were actually looked up
    EXPECT_NE(line.find("\"op_cache\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"lookups\""), std::string::npos) << line;
}

TEST(cli_errors, memory_flags_reject_bad_values) {
    EXPECT_EQ(run({"solve", "--cache-bits", "31"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-bits", "7"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-bits", "abc"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--max-cache-bits", "31"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--gc-threshold", "2k"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-bits"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-ways", "3"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-ways", "0"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-ways", "32"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-ways", "abc"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cache-ways"}).exit_code, 2);
}

TEST(cli_errors, gen_spec_rejects_bad_scale) {
    EXPECT_NE(run({"solve", "gen:counter:2:x"}).exit_code, 0);
    EXPECT_NE(run({"solve", "gen:counter:2:0"}).exit_code, 0);
    EXPECT_NE(run({"solve", "gen:counter:2:8:9"}).exit_code, 0);
}

// ---------------------------------------------------------------------------
// verify / diagnose / reduce
// ---------------------------------------------------------------------------

TEST(cli_verify, composition_check_passes_on_examples) {
    const cli_run r = run({"verify", example("delay_f.blif"),
                           example("delay_s.blif")});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_EQ(raw_field(first_line(r.out), "composition_ok"), "true");
}

TEST(cli_diagnose, csf_diagnosis_is_clean) {
    const cli_run r = run({"diagnose", example("passthrough_f.kiss"),
                           example("passthrough_s.kiss")});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    EXPECT_EQ(raw_field(first_line(r.out), "ok"), "true");
}

TEST(cli_diagnose, bad_candidate_yields_counterexample_trace) {
    // a candidate for the inverter pair, whose CSF is empty: any machine
    // is wrong, and the diagnosis must carry a concrete trace
    const std::string impl = temp_path("bad_impl.kiss");
    {
        std::ofstream out(impl);
        out << ".i 1\n.o 1\n.s 1\n.p 2\n.r s0\n"
               "0 s0 s0 0\n1 s0 s0 1\n.e\n";
    }
    const cli_run r = run({"diagnose", example("inverter_f.kiss"),
                           example("inverter_s.kiss"), "--impl", impl});
    EXPECT_EQ(r.exit_code, 1);
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "ok"), "false");
    EXPECT_NE(raw_field(line, "trace"), "");
    EXPECT_NE(r.err.find("step 0"), std::string::npos) << r.err;
    std::remove(impl.c_str());
}

TEST(cli_reduce, writes_a_small_kiss_machine) {
    const std::string out_path = temp_path("reduced.kiss");
    const cli_run r = run({"reduce", example("passthrough_f.kiss"),
                           example("passthrough_s.kiss"), "--out", out_path});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    const std::string line = first_line(r.out);
    EXPECT_EQ(raw_field(line, "states"), "2"); // parity needs two states
    EXPECT_EQ(raw_field(line, "method"), "\"compatibility\"");
    std::ifstream in(out_path);
    ASSERT_TRUE(in.good());
    std::string head;
    in >> head;
    EXPECT_EQ(head, ".i");
    std::remove(out_path.c_str());
}

TEST(cli_reduce, empty_solution_is_an_error) {
    const cli_run r = run({"reduce", example("inverter_f.kiss"),
                           example("inverter_s.kiss")});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_EQ(raw_field(first_line(r.out), "status"), "\"error\"");
}

// ---------------------------------------------------------------------------
// error paths
// ---------------------------------------------------------------------------

TEST(cli_errors, unknown_option_is_usage_error) {
    const cli_run r = run({"solve", "--bogus"});
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST(cli_errors, unknown_command_is_usage_error) {
    EXPECT_EQ(run({"frobnicate"}).exit_code, 2);
    EXPECT_EQ(run({}).exit_code, 2);
}

TEST(cli_errors, missing_input_file) {
    const cli_run r = run({"solve", "no_such_f.kiss", "no_such_s.kiss"});
    EXPECT_EQ(r.exit_code, 3);
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(cli_errors, missing_flag_value) {
    EXPECT_EQ(run({"solve", "--strategy"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--cluster-limit", "lots"}).exit_code, 2);
}

TEST(cli_errors, unknown_strategy_still_rejected) {
    const cli_run r = run({"solve", "--strategy", "saturati0n"});
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.err.find("unknown strategy"), std::string::npos);
}

TEST(cli_errors, numeric_flags_reject_trailing_garbage) {
    EXPECT_EQ(run({"solve", "--max-states", "1e6"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--jobs", "4x"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--time-limit", "30s"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "gen:counter:7abc"}).exit_code, 3);
    // stoul would silently wrap negatives to huge values
    EXPECT_EQ(run({"solve", "--cluster-limit", "-1"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "--time-limit", "-5"}).exit_code, 2);
    EXPECT_EQ(run({"solve", "gen:counter:-1"}).exit_code, 3);
}

TEST(cli_errors, help_is_not_an_error) {
    EXPECT_EQ(run({"--help"}).exit_code, 0);
    EXPECT_EQ(run({"help"}).exit_code, 0);
    EXPECT_EQ(run({"solve", "--help"}).exit_code, 0);
}

TEST(cli_errors, missing_impl_is_unreadable_input) {
    EXPECT_EQ(run({"diagnose", example("passthrough_f.kiss"),
                   example("passthrough_s.kiss"), "--impl",
                   "no_such_impl.kiss"})
                  .exit_code,
              3);
}

TEST(cli_errors, batch_rejects_shared_out_path) {
    EXPECT_EQ(run({"batch", example("campaign.txt"), "--command", "reduce",
                   "--out", "x.kiss"})
                  .exit_code,
              2);
}

TEST(cli_solve, single_run_and_batch_agree_on_default_names) {
    // "passthrough_f.kiss" → "passthrough", same as the manifest default
    const cli_run r = run({"solve", example("passthrough_f.kiss"),
                           example("passthrough_s.kiss")});
    EXPECT_EQ(raw_field(first_line(r.out), "name"), "\"passthrough\"");
}

TEST(cli_errors, malformed_input_is_a_job_error) {
    const std::string bad = temp_path("bad.kiss");
    {
        std::ofstream out(bad);
        out << ".i 1\n.o 1\n"; // no transitions
    }
    const cli_run r = run({"solve", bad, bad});
    EXPECT_EQ(r.exit_code, 1);
    const std::string line = first_line(r.out);
    EXPECT_TRUE(valid_json_object(line)) << line;
    EXPECT_EQ(raw_field(line, "status"), "\"error\"");
    EXPECT_NE(raw_field(line, "error"), "");
    std::remove(bad.c_str());
}

TEST(cli_errors, missing_manifest) {
    EXPECT_EQ(run({"batch", "no_such_manifest.txt"}).exit_code, 3);
}

TEST(cli_errors, malformed_manifest_line) {
    const std::string manifest = temp_path("bad_manifest.txt");
    {
        std::ofstream out(manifest);
        out << "only_one_token\n";
    }
    EXPECT_EQ(run({"batch", manifest}).exit_code, 3);
    std::remove(manifest.c_str());
}

// ---------------------------------------------------------------------------
// batch
// ---------------------------------------------------------------------------

TEST(cli_batch, four_threads_match_sequential_byte_for_byte) {
    const std::string manifest = example("campaign.txt");
    const cli_run seq = run({"batch", manifest, "--jobs", "1"});
    const cli_run par = run({"batch", manifest, "--jobs", "4"});
    EXPECT_EQ(seq.exit_code, 0) << seq.err;
    EXPECT_EQ(par.exit_code, 0) << par.err;
    EXPECT_EQ(seq.out, par.out); // ordered, untimed records: identical
    // every record is valid JSON and the campaign covers the whole manifest
    std::istringstream lines(seq.out);
    std::string line;
    std::size_t records = 0;
    while (std::getline(lines, line)) {
        EXPECT_TRUE(valid_json_object(line)) << line;
        ++records;
    }
    EXPECT_EQ(records, 6u);
    EXPECT_NE(seq.err.find("6 equation(s)"), std::string::npos) << seq.err;
}

TEST(cli_batch, per_job_failures_do_not_kill_the_campaign) {
    const std::string manifest = temp_path("mixed_manifest.txt");
    {
        std::ofstream out(manifest);
        out << example("passthrough_f.kiss") << " "
            << example("passthrough_s.kiss") << " good\n"
            << "gen:counter:3 generated\n";
    }
    // library-level: a job whose input is unreadable at run time errors
    // alone (sources are slurped up front, so simulate with a bad text)
    std::vector<batch_job> jobs = read_manifest_file(manifest);
    ASSERT_EQ(jobs.size(), 2u);
    jobs[0].fixed.text = "garbage";
    batch_options options;
    options.jobs = 2;
    const batch_report report = run_batch(jobs, options);
    EXPECT_EQ(report.errors, 1u);
    EXPECT_EQ(report.solved, 1u);
    EXPECT_FALSE(report.records[0].completed);
    EXPECT_TRUE(report.records[1].completed);
    std::remove(manifest.c_str());
}

TEST(cli_batch, failed_checks_fail_the_campaign_exit_code) {
    // a job that solves but fails its diagnose check must flip the
    // campaign to exit 1 (parity with `leq diagnose F S --impl ...`)
    const std::string impl = temp_path("campaign_bad_impl.kiss");
    {
        std::ofstream out(impl);
        out << ".i 1\n.o 1\n.s 1\n.p 2\n.r s0\n"
               "0 s0 s0 0\n1 s0 s0 1\n.e\n";
    }
    const std::string manifest = temp_path("check_fail_manifest.txt");
    {
        std::ofstream out(manifest);
        out << example("inverter_f.kiss") << " "
            << example("inverter_s.kiss") << "\n";
    }
    const cli_run r = run({"batch", manifest, "--command", "diagnose",
                           "--impl", impl});
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("1 failed check(s)"), std::string::npos) << r.err;
    std::remove(impl.c_str());
    std::remove(manifest.c_str());
}

TEST(cli_batch, verify_command_applies_to_every_job) {
    const std::string manifest = temp_path("verify_manifest.txt");
    {
        std::ofstream out(manifest);
        out << example("passthrough_f.kiss") << " "
            << example("passthrough_s.kiss") << "\n"
            << example("delay_f.blif") << " " << example("delay_s.blif")
            << "\n";
    }
    const cli_run r =
        run({"batch", manifest, "--jobs", "2", "--command", "verify"});
    EXPECT_EQ(r.exit_code, 0) << r.err;
    std::istringstream lines(r.out);
    std::string line;
    while (std::getline(lines, line)) {
        EXPECT_EQ(raw_field(line, "composition_ok"), "true") << line;
    }
    std::remove(manifest.c_str());
}

} // namespace
