/// \file test_subsolution.cpp
/// \brief Sub-solution selection (the paper's "optimum sub-solution" future
/// work): policy extraction, minimization, containment and the search.

#include "eq/extract.hpp"
#include "eq/solver.hpp"
#include "eq/subsolution.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

struct solved {
    network original;
    split_result split;
    equation_problem problem;
    solve_result result;

    solved(network net, const std::vector<std::size_t>& cut)
        : original(std::move(net)), split(split_latches(original, cut)),
          problem(split.fixed, original),
          result(solve_partitioned(problem)) {}
};

bool input_progressive_over_u(const equation_problem& p, const automaton& a) {
    const bdd v_cube = p.mgr().cube(p.v_vars);
    for (std::uint32_t q = 0; q < a.num_states(); ++q) {
        if (!p.mgr().exists(a.domain(q), v_cube).is_one()) { return false; }
    }
    return true;
}

// ---------------------------------------------------------------------------
// policy extraction
// ---------------------------------------------------------------------------

TEST(subsolution, first_edge_policy_matches_extract_fsm) {
    solved s(make_paper_example(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const automaton& csf = *s.result.csf;
    const automaton a = extract_fsm(csf, s.problem.u_vars, s.problem.v_vars);
    const automaton b = extract_fsm_with_policy(
        csf, s.problem.u_vars, s.problem.v_vars,
        extraction_policy::first_edge);
    EXPECT_TRUE(language_equivalent(a, b));
    EXPECT_EQ(a.num_states(), b.num_states());
}

TEST(subsolution, every_policy_yields_contained_progressive_fsm) {
    solved s(make_traffic_controller(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    ASSERT_FALSE(s.result.empty_solution);
    const automaton& csf = *s.result.csf;
    for (const extraction_policy policy : all_extraction_policies()) {
        const automaton fsm = extract_fsm_with_policy(
            csf, s.problem.u_vars, s.problem.v_vars, policy);
        EXPECT_TRUE(is_deterministic(fsm)) << to_string(policy);
        EXPECT_TRUE(language_contained(fsm, csf)) << to_string(policy);
        EXPECT_TRUE(input_progressive_over_u(s.problem, fsm))
            << to_string(policy);
        // a contained FSM also satisfies the paper's check (2)
        EXPECT_TRUE(verify_composition_contained(s.problem, fsm))
            << to_string(policy);
    }
}

TEST(subsolution, rejects_empty_csf) {
    solved s(make_paper_example(), {1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    automaton empty(s.problem.mgr(), s.result.csf->label_vars());
    empty.add_state(false);
    empty.set_initial(0);
    EXPECT_THROW((void)extract_fsm_with_policy(
                     empty, s.problem.u_vars, s.problem.v_vars,
                     extraction_policy::first_edge),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// the search
// ---------------------------------------------------------------------------

TEST(subsolution, search_returns_smallest_candidate) {
    solved s(make_counter(3), {2});
    ASSERT_EQ(s.result.status, solve_status::ok);
    ASSERT_FALSE(s.result.empty_solution);
    const auto r = select_small_subsolution(*s.result.csf, s.problem.u_vars,
                                            s.problem.v_vars);
    ASSERT_EQ(r.candidates.size(), all_extraction_policies().size());
    std::size_t smallest = SIZE_MAX;
    for (const auto& c : r.candidates) {
        EXPECT_LE(c.minimized_states, c.raw_states) << to_string(c.policy);
        smallest = std::min(smallest, c.minimized_states);
    }
    EXPECT_EQ(r.fsm.num_states(), smallest);
    EXPECT_TRUE(language_contained(r.fsm, *s.result.csf));
    EXPECT_TRUE(verify_composition_contained(s.problem, r.fsm));
}

TEST(subsolution, minimized_fsm_never_larger_than_csf) {
    solved s(make_lfsr(4, {1}), {3});
    ASSERT_EQ(s.result.status, solve_status::ok);
    if (s.result.empty_solution) { GTEST_SKIP(); }
    const auto r = select_small_subsolution(*s.result.csf, s.problem.u_vars,
                                            s.problem.v_vars);
    EXPECT_LE(r.fsm.num_states(), s.result.csf->num_states());
}

TEST(subsolution, search_beats_or_matches_naive_extraction) {
    // the whole point: the searched sub-solution is never worse than the
    // baseline greedy extraction
    solved s(make_shift_xor(4), {3});
    ASSERT_EQ(s.result.status, solve_status::ok);
    if (s.result.empty_solution) { GTEST_SKIP(); }
    const automaton naive =
        extract_fsm(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    const auto r = select_small_subsolution(*s.result.csf, s.problem.u_vars,
                                            s.problem.v_vars);
    EXPECT_LE(r.fsm.num_states(), naive.num_states());
}

class subsolution_families : public ::testing::TestWithParam<int> {};

TEST_P(subsolution_families, search_is_sound_across_circuits) {
    const int id = GetParam();
    const network net = id == 0   ? make_counter(3)
                        : id == 1 ? make_lfsr(4, {1})
                        : id == 2 ? make_traffic_controller()
                        : id == 3 ? make_shift_xor(3)
                        : id == 4 ? make_paper_example()
                                  : make_counter(4);
    solved s(net, {net.num_latches() - 1});
    ASSERT_EQ(s.result.status, solve_status::ok);
    if (s.result.empty_solution) { GTEST_SKIP(); }
    const auto r = select_small_subsolution(*s.result.csf, s.problem.u_vars,
                                            s.problem.v_vars);
    EXPECT_TRUE(is_deterministic(r.fsm));
    EXPECT_TRUE(language_contained(r.fsm, *s.result.csf));
    EXPECT_TRUE(input_progressive_over_u(s.problem, r.fsm));
    EXPECT_TRUE(verify_composition_contained(s.problem, r.fsm));
    // sanity on the report
    EXPECT_FALSE(r.candidates.empty());
    for (const auto& c : r.candidates) {
        EXPECT_GT(c.raw_states, 0u);
        EXPECT_GT(c.minimized_states, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(families, subsolution_families,
                         ::testing::Range(0, 6));

TEST(subsolution, policy_names_are_distinct) {
    std::set<std::string> names;
    for (const extraction_policy p : all_extraction_policies()) {
        names.insert(to_string(p));
    }
    EXPECT_EQ(names.size(), all_extraction_policies().size());
}

} // namespace
