/// \file test_gen.cpp
/// \brief The scenario kit pins itself: family shape invariants, per-seed
/// determinism, shrinker minimality, reproducer round-tripping, and the
/// end-to-end self-test — a deliberately injected image-engine bug must be
/// caught by the differential oracle and shrunk to a tiny reproducer.

#include "automata/kiss.hpp"
#include "automata/stg.hpp"
#include "eq/problem.hpp"
#include "eq/resynth.hpp"
#include "gen/differential.hpp"
#include "gen/fuzz.hpp"
#include "gen/mutate.hpp"
#include "gen/scenario.hpp"
#include "gen/shrink.hpp"
#include "net/blif.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

namespace {

using namespace leq;

// ---------------------------------------------------------------------------
// family shape invariants
// ---------------------------------------------------------------------------

class gen_families
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(gen_families, shape_invariants_hold) {
    const auto family = all_scenario_families[std::get<0>(GetParam())];
    const std::uint32_t seed = std::get<1>(GetParam());
    const scenario s = make_scenario(family, seed);
    SCOPED_TRACE(s.name);

    ASSERT_NO_THROW(s.fixed.validate());
    ASSERT_NO_THROW(s.spec.validate());

    // F embeds S's interface: shared ports first, names matching
    ASSERT_GE(s.fixed.num_inputs(),
              s.spec.num_inputs() + s.num_choice_inputs);
    ASSERT_GE(s.fixed.num_outputs(), s.spec.num_outputs());
    for (std::size_t k = 0; k < s.spec.num_inputs(); ++k) {
        EXPECT_EQ(s.fixed.signal_name(s.fixed.inputs()[k]),
                  s.spec.signal_name(s.spec.inputs()[k]));
    }
    for (std::size_t j = 0; j < s.spec.num_outputs(); ++j) {
        EXPECT_EQ(s.fixed.signal_name(s.fixed.outputs()[j]),
                  s.spec.signal_name(s.spec.outputs()[j]));
    }

    // the instance builds (construction checks the contract again)
    ASSERT_NO_THROW(equation_problem(s.fixed, s.spec, s.num_choice_inputs));

    if (s.has_part) {
        const std::size_t num_u =
            s.fixed.num_outputs() - s.spec.num_outputs();
        const std::size_t num_v = s.fixed.num_inputs() -
                                  s.spec.num_inputs() - s.num_choice_inputs;
        EXPECT_EQ(s.part.num_inputs(), num_u);
        EXPECT_EQ(s.part.num_outputs(), num_v);
        EXPECT_EQ(s.part.initial_state().size(), s.part.num_latches());
    }
    if (s.is_mutant) {
        EXPECT_TRUE(s.has_part);
        EXPECT_FALSE(s.mutation_desc.empty());
        EXPECT_NE(write_blif_string(s.spec),
                  write_blif_string(s.baseline_spec))
            << "mutation must change the spec";
    }
}

INSTANTIATE_TEST_SUITE_P(
    families_x_seeds, gen_families,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(1u, 2u, 7u)));

TEST(gen_determinism, same_seed_reproduces_bit_for_bit) {
    for (const scenario_family family : all_scenario_families) {
        const scenario a = make_scenario(family, 11);
        const scenario b = make_scenario(family, 11);
        EXPECT_EQ(write_blif_string(a.fixed), write_blif_string(b.fixed))
            << to_string(family);
        EXPECT_EQ(write_blif_string(a.spec), write_blif_string(b.spec))
            << to_string(family);
    }
}

TEST(gen_determinism, seeds_vary_the_instance) {
    // not every family varies on every seed pair; random must
    const scenario a = make_scenario(scenario_family::random, 1);
    const scenario b = make_scenario(scenario_family::random, 2);
    EXPECT_NE(write_blif_string(a.spec), write_blif_string(b.spec));
}

TEST(gen_chaincounter, deterministic_and_scale1_is_byte_identical) {
    // bit-for-bit reproduction per (seed, scale) — and the historical
    // contract that scale 1 matches the two-argument call byte for byte,
    // so shrunk reproducers stay valid
    const scenario a = make_scenario(scenario_family::chaincounter, 9, 4);
    const scenario b = make_scenario(scenario_family::chaincounter, 9, 4);
    EXPECT_EQ(write_blif_string(a.fixed), write_blif_string(b.fixed));
    EXPECT_EQ(write_blif_string(a.spec), write_blif_string(b.spec));
    EXPECT_EQ(write_blif_string(a.part), write_blif_string(b.part));

    const scenario two_arg = make_scenario(scenario_family::chaincounter, 9);
    const scenario explicit1 =
        make_scenario(scenario_family::chaincounter, 9, 1);
    EXPECT_EQ(write_blif_string(two_arg.fixed),
              write_blif_string(explicit1.fixed));
    EXPECT_EQ(write_blif_string(two_arg.spec),
              write_blif_string(explicit1.spec));
    EXPECT_EQ(two_arg.name, "chaincounter:9");
    EXPECT_EQ(explicit1.name, "chaincounter:9");
}

TEST(gen_chaincounter, scale_widens_the_carry_chain) {
    // each scale doubling adds a cell without reshuffling the structure:
    // the gated ripple chain just grows, which is what makes the family a
    // deep-sequential stress knob
    const scenario base = make_scenario(scenario_family::chaincounter, 9);
    const scenario wide = make_scenario(scenario_family::chaincounter, 9, 8);
    EXPECT_EQ(wide.spec.num_latches(), base.spec.num_latches() + 3);
    EXPECT_TRUE(wide.has_part);
    // the split preserves the equation shape: F + X_P latches cover S
    EXPECT_EQ(wide.fixed.num_latches() + wide.part.num_latches(),
              wide.spec.num_latches());
}

TEST(gen_menu, canonical_circuits_validate_and_reproduce) {
    for (int id = 0; id < 10; ++id) {
        const network a = make_menu_circuit(id);
        const network b = make_menu_circuit(id);
        ASSERT_NO_THROW(a.validate()) << id;
        EXPECT_EQ(write_blif_string(a), write_blif_string(b)) << id;
        EXPECT_GE(a.num_latches(), 1u) << id;
    }
    // salt decorrelates the random tail of the menu
    EXPECT_NE(write_blif_string(make_menu_circuit(7, 0)),
              write_blif_string(make_menu_circuit(7, 1)));
}

TEST(gen_seed_env, leq_test_seed_overrides_fallback) {
    unsetenv("LEQ_TEST_SEED");
    EXPECT_EQ(test_seed(42u), 42u);
    setenv("LEQ_TEST_SEED", "1234", 1);
    EXPECT_EQ(test_seed(42u), 1234u);
    setenv("LEQ_TEST_SEED", "not-a-number", 1);
    EXPECT_EQ(test_seed(42u), 42u);
    unsetenv("LEQ_TEST_SEED");
    EXPECT_EQ(test_seed(7u), 7u);
}

// ---------------------------------------------------------------------------
// mutation operators
// ---------------------------------------------------------------------------

TEST(gen_mutate, edits_are_local_and_validated) {
    const network net = make_menu_circuit(1); // counter(4)
    const auto all = enumerate_mutations(net);
    ASSERT_FALSE(all.empty());
    for (const mutation& m : all) {
        const network mutated = apply_mutation(net, m);
        ASSERT_NO_THROW(mutated.validate()) << describe(m, net);
        EXPECT_EQ(mutated.num_inputs(), net.num_inputs());
        EXPECT_EQ(mutated.num_outputs(), net.num_outputs());
        EXPECT_EQ(mutated.num_latches(), net.num_latches());
    }
}

TEST(gen_mutate, reductions_shrink_the_interface) {
    const network net = make_menu_circuit(4); // traffic controller
    const network no_in = tie_input(net, 0, false);
    EXPECT_EQ(no_in.num_inputs(), net.num_inputs() - 1);
    const network no_latch = tie_latch(net, 1);
    EXPECT_EQ(no_latch.num_latches(), net.num_latches() - 1);
    const network no_out = drop_output(net, 0);
    EXPECT_EQ(no_out.num_outputs(), net.num_outputs() - 1);
    // tying everything still validates (frozen-machine degenerate case)
    network frozen = net;
    while (frozen.num_latches() > 0) { frozen = tie_latch(frozen, 0); }
    ASSERT_NO_THROW(frozen.validate());
}

TEST(gen_mutate, tied_latch_behaves_as_frozen_state) {
    // tying a latch must equal holding that state bit at its reset value:
    // check against direct simulation on the original with the bit forced
    const network net = make_menu_circuit(1);
    const network tied = tie_latch(net, 0);
    std::vector<bool> s_orig(net.num_latches(), false);
    std::vector<bool> s_tied(tied.num_latches(), false);
    std::uint32_t lfsr = 0xace1u;
    for (int step = 0; step < 64; ++step) {
        std::vector<bool> in(net.num_inputs());
        for (std::size_t b = 0; b < in.size(); ++b) {
            lfsr = (lfsr >> 1) ^ (static_cast<std::uint32_t>(-(lfsr & 1u)) &
                                  0xB400u);
            in[b] = (lfsr & 1u) != 0;
        }
        s_orig[0] = net.latches()[0].init; // force the frozen bit
        const auto a = net.simulate(s_orig, in);
        const auto b = tied.simulate(s_tied, in);
        EXPECT_EQ(a.outputs, b.outputs) << "step " << step;
        s_orig = a.next_state;
        s_tied = b.next_state;
    }
}

// ---------------------------------------------------------------------------
// shrinker
// ---------------------------------------------------------------------------

TEST(gen_shrink, structural_predicate_reaches_1_minimality) {
    // synthetic failure: "the spec still has a latch".  The greedy loop
    // must strip everything the predicate does not protect.
    const scenario sc = make_scenario(scenario_family::counter, 3);
    const shrink_result r = shrink_instance(
        {sc.fixed, sc.spec, sc.num_choice_inputs},
        [](const shrink_instance_desc& d) {
            return d.spec.num_latches() >= 1;
        },
        {});
    EXPECT_EQ(r.inst.spec.num_latches(), 1u);
    EXPECT_EQ(r.inst.fixed.num_latches(), 0u);
    EXPECT_EQ(r.inst.spec.num_inputs(), 0u);
    EXPECT_EQ(r.inst.spec.num_outputs(), 0u);
    EXPECT_GT(r.accepted, 0u);
    EXPECT_GT(r.predicate_runs, r.accepted);
}

TEST(gen_shrink, passing_instance_is_returned_untouched) {
    const scenario sc = make_scenario(scenario_family::counter, 1);
    const shrink_result r = shrink_instance(
        {sc.fixed, sc.spec, sc.num_choice_inputs},
        [](const shrink_instance_desc&) { return false; }, {});
    EXPECT_EQ(r.accepted, 0u);
    EXPECT_EQ(write_blif_string(r.inst.spec), write_blif_string(sc.spec));
}

/// Differential options with an image-engine fault injected into the second
/// matrix entry: every image wrongly suppresses successors that set the
/// spec's first next-state variable.
differential_options faulty_diff() {
    differential_options diff;
    diff.matrix = {image_options{}, image_options{}};
    diff.tune_matrix = [](const equation_problem& problem,
                          std::vector<image_options>& matrix) {
        if (!problem.ns_s.empty()) {
            matrix[1].fault_suppress_var = problem.ns_s.front();
        }
    };
    return diff;
}

TEST(gen_shrink, injected_image_bug_shrinks_to_tiny_reproducer) {
    // the acceptance check of the harness: a deliberately injected
    // image-engine bug (successors silently dropped) must (a) be caught by
    // the differential oracle and (b) shrink to a reproducer of <= 6 states
    const differential_options diff = faulty_diff();
    const scenario sc = make_scenario(scenario_family::counter, 1);
    const differential_outcome broken = run_differential(sc, diff);
    ASSERT_FALSE(broken.ok) << "fault injection must trip the differential";

    const shrink_result r = shrink_instance(
        {sc.fixed, sc.spec, sc.num_choice_inputs},
        [&diff](const shrink_instance_desc& d) {
            return !run_differential(d.fixed, d.spec, d.num_choice_inputs,
                                     diff)
                        .ok;
        },
        {});
    EXPECT_GT(r.accepted, 0u);
    ASSERT_GT(r.spec_states, 0u) << "state count must be computable";
    ASSERT_GT(r.fixed_states, 0u);
    EXPECT_LE(r.spec_states, 6u) << "reproducer spec too large";
    EXPECT_LE(r.fixed_states, 6u) << "reproducer fixed too large";

    // the shrunk instance still reproduces and the clean flows still agree
    EXPECT_FALSE(run_differential(r.inst.fixed, r.inst.spec,
                                  r.inst.num_choice_inputs, diff)
                     .ok);
    EXPECT_TRUE(run_differential(r.inst.fixed, r.inst.spec,
                                 r.inst.num_choice_inputs, {})
                    .ok);
}

TEST(gen_fuzz, campaign_catches_and_packages_the_injected_bug) {
    fuzz_options options;
    options.families = {scenario_family::counter};
    options.seeds = 1;
    options.seed_base = 1;
    options.diff = faulty_diff();
    const fuzz_report report = run_fuzz(options);
    ASSERT_EQ(report.failures.size(), 1u);
    const fuzz_failure& f = report.failures.front();
    EXPECT_TRUE(f.shrunk);
    EXPECT_LE(f.repro.spec_states, 6u);
    EXPECT_FALSE(f.repro.failure.empty());
    const std::string text = reproducer_to_string(f.repro);
    EXPECT_NE(text.find("family: counter"), std::string::npos);
    EXPECT_NE(text.find(".model"), std::string::npos) << "BLIF missing";
    EXPECT_NE(text.find(".i "), std::string::npos) << "KISS missing";
}

TEST(gen_fuzz, clean_campaign_reports_ok) {
    fuzz_options options;
    options.seeds = 2;
    options.seed_base = 40;
    const fuzz_report report = run_fuzz(options);
    EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                     ? ""
                                     : report.failures.front().failure);
    EXPECT_EQ(report.scenarios_run, 2u * 7u);
}

// ---------------------------------------------------------------------------
// reproducer round-tripping (automaton_io satellite)
// ---------------------------------------------------------------------------

TEST(gen_reproducer, kiss_output_reparses_to_equivalent_machine) {
    for (const scenario_family family :
         {scenario_family::counter, scenario_family::arbiter,
          scenario_family::pipeline}) {
        const scenario sc = make_scenario(family, 5);
        SCOPED_TRACE(sc.name);
        for (const network* net : {&sc.fixed, &sc.spec}) {
            std::string kiss;
            try {
                kiss = network_to_kiss(*net);
            } catch (const std::exception&) {
                continue; // too many states for a KISS table; BLIF covers it
            }
            // re-parse against the machine's own STG: same language
            bdd_manager mgr;
            std::vector<std::uint32_t> in, out;
            for (std::size_t k = 0; k < net->num_inputs(); ++k) {
                in.push_back(mgr.new_var());
            }
            for (std::size_t k = 0; k < net->num_outputs(); ++k) {
                out.push_back(mgr.new_var());
            }
            const automaton direct =
                network_to_automaton(mgr, *net, in, out);
            const automaton reparsed = read_kiss_string(kiss, mgr, in, out);
            EXPECT_TRUE(language_equivalent(direct, reparsed));
        }
    }
}

TEST(gen_reproducer, blif_output_reparses_to_equivalent_network) {
    for (const scenario_family family : all_scenario_families) {
        const scenario sc = make_scenario(family, 9);
        SCOPED_TRACE(sc.name);
        const network back = read_blif_string(write_blif_string(sc.spec));
        EXPECT_TRUE(simulation_equivalent(sc.spec, back, 4, 128, 99));
    }
}

TEST(gen_reproducer, files_are_written_and_reparse) {
    reproducer repro;
    repro.family = "counter";
    repro.seed = 4;
    repro.option_set = describe_option_matrix(default_option_matrix());
    repro.failure = "synthetic";
    const scenario sc = make_scenario(scenario_family::counter, 4);
    repro.inst = {sc.fixed, sc.spec, 0};
    const std::string stem =
        ::testing::TempDir() + "leq_gen_repro";
    write_reproducer(repro, stem);
    const network f = read_blif_file(stem + "_f.blif");
    const network s = read_blif_file(stem + "_s.blif");
    EXPECT_TRUE(simulation_equivalent(f, sc.fixed, 4, 64, 5));
    EXPECT_TRUE(simulation_equivalent(s, sc.spec, 4, 64, 6));
}

} // namespace
