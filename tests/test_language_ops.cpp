/// \file test_language_ops.cpp
/// \brief Union, difference, prefix-closure, witness words and word sampling.

#include "automata/automaton.hpp"
#include "automata/stg.hpp"
#include "net/generator.hpp"
#include "net/netbdd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace leq {
namespace {

/// a over one label variable x: accepts words where every letter has x=1,
/// of length <= n (prefix-closed chain).
automaton ones_chain(bdd_manager& mgr, std::size_t n) {
    automaton a(mgr, {0});
    for (std::size_t s = 0; s <= n; ++s) { a.add_state(true); }
    for (std::size_t s = 0; s < n; ++s) {
        a.add_transition(static_cast<std::uint32_t>(s),
                         static_cast<std::uint32_t>(s + 1), mgr.var(0));
    }
    a.set_initial(0);
    return a;
}

/// accepts exactly the words of length n (any letters).
automaton length_exactly(bdd_manager& mgr, std::size_t n) {
    automaton a(mgr, {0});
    for (std::size_t s = 0; s <= n; ++s) { a.add_state(s == n); }
    for (std::size_t s = 0; s < n; ++s) {
        a.add_transition(static_cast<std::uint32_t>(s),
                         static_cast<std::uint32_t>(s + 1), mgr.one());
    }
    a.set_initial(0);
    return a;
}

word make_word(const std::vector<int>& bits) {
    word w;
    for (const int b : bits) { w.push_back({b != 0}); }
    return w;
}

// ---------------------------------------------------------------------------
// union
// ---------------------------------------------------------------------------

TEST(language_ops, union_accepts_both_languages) {
    bdd_manager mgr(1);
    const automaton a = length_exactly(mgr, 2);
    const automaton b = length_exactly(mgr, 4);
    const automaton u = union_automata(a, b);
    EXPECT_TRUE(accepts(u, make_word({0, 1})));
    EXPECT_TRUE(accepts(u, make_word({1, 0, 1, 0})));
    EXPECT_FALSE(accepts(u, make_word({1})));
    EXPECT_FALSE(accepts(u, make_word({1, 1, 1})));
    EXPECT_FALSE(accepts(u, {}));
}

TEST(language_ops, union_empty_word_cases) {
    bdd_manager mgr(1);
    const automaton a = length_exactly(mgr, 0); // only the empty word
    const automaton b = length_exactly(mgr, 1);
    const automaton u = union_automata(a, b);
    EXPECT_TRUE(accepts(u, {}));
    EXPECT_TRUE(accepts(u, make_word({1})));
    EXPECT_FALSE(accepts(u, make_word({1, 1})));
}

TEST(language_ops, union_is_commutative_in_language) {
    bdd_manager mgr(1);
    const automaton a = ones_chain(mgr, 2);
    const automaton b = length_exactly(mgr, 3);
    EXPECT_TRUE(language_equivalent(union_automata(a, b),
                                    union_automata(b, a)));
}

TEST(language_ops, union_with_self_is_identity) {
    bdd_manager mgr(1);
    const automaton a = ones_chain(mgr, 3);
    EXPECT_TRUE(language_equivalent(union_automata(a, a), a));
}

TEST(language_ops, union_rejects_support_mismatch) {
    bdd_manager mgr(2);
    automaton a(mgr, {0});
    a.add_state(true);
    automaton b(mgr, {1});
    b.add_state(true);
    EXPECT_THROW((void)union_automata(a, b), std::logic_error);
}

// ---------------------------------------------------------------------------
// difference
// ---------------------------------------------------------------------------

TEST(language_ops, difference_semantics) {
    bdd_manager mgr(1);
    const automaton any3 = length_exactly(mgr, 3);
    const automaton ones = ones_chain(mgr, 5);
    // words of length 3 that are NOT all-ones
    const automaton d = difference(any3, ones);
    EXPECT_TRUE(accepts(d, make_word({1, 0, 1})));
    EXPECT_TRUE(accepts(d, make_word({0, 0, 0})));
    EXPECT_FALSE(accepts(d, make_word({1, 1, 1})));
    EXPECT_FALSE(accepts(d, make_word({1, 0})));
}

TEST(language_ops, difference_with_self_is_empty) {
    bdd_manager mgr(1);
    const automaton a = ones_chain(mgr, 4);
    EXPECT_TRUE(language_empty(difference(a, a)));
}

TEST(language_ops, difference_from_superset_is_empty) {
    bdd_manager mgr(1);
    const automaton small = ones_chain(mgr, 2);
    const automaton big = ones_chain(mgr, 6);
    EXPECT_TRUE(language_empty(difference(small, big)));
    EXPECT_FALSE(language_empty(difference(big, small)));
}

// ---------------------------------------------------------------------------
// prefix closure
// ---------------------------------------------------------------------------

TEST(language_ops, ones_chain_is_prefix_closed) {
    bdd_manager mgr(1);
    EXPECT_TRUE(is_prefix_closed(ones_chain(mgr, 4)));
}

TEST(language_ops, length_exactly_is_not_prefix_closed) {
    bdd_manager mgr(1);
    EXPECT_FALSE(is_prefix_closed(length_exactly(mgr, 2)));
    // length 0 accepts only the empty word, which is prefix-closed
    EXPECT_TRUE(is_prefix_closed(length_exactly(mgr, 0)));
}

TEST(language_ops, empty_language_is_prefix_closed) {
    bdd_manager mgr(1);
    automaton a(mgr, {0});
    a.add_state(false);
    a.set_initial(0);
    EXPECT_TRUE(is_prefix_closed(a));
}

TEST(language_ops, network_stg_is_prefix_closed) {
    // the paper's premise: automata derived from networks are prefix-closed
    const network net = make_paper_example();
    bdd_manager mgr;
    std::vector<std::uint32_t> in_vars, out_vars;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        in_vars.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_outputs(); ++k) {
        out_vars.push_back(mgr.new_var());
    }
    const automaton stg = network_to_automaton(mgr, net, in_vars, out_vars);
    EXPECT_TRUE(is_prefix_closed(stg));
}

// ---------------------------------------------------------------------------
// shortest word / counterexample
// ---------------------------------------------------------------------------

TEST(language_ops, shortest_word_of_empty_language_is_nullopt) {
    bdd_manager mgr(1);
    automaton a(mgr, {0});
    a.add_state(false);
    a.set_initial(0);
    EXPECT_FALSE(shortest_accepted_word(a).has_value());
}

TEST(language_ops, shortest_word_empty_when_initial_accepting) {
    bdd_manager mgr(1);
    const automaton a = ones_chain(mgr, 3);
    const auto w = shortest_accepted_word(a);
    ASSERT_TRUE(w.has_value());
    EXPECT_TRUE(w->empty());
}

TEST(language_ops, shortest_word_has_minimal_length) {
    bdd_manager mgr(1);
    const automaton a = length_exactly(mgr, 3);
    const auto w = shortest_accepted_word(a);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->size(), 3u);
    EXPECT_TRUE(accepts(a, *w));
}

TEST(language_ops, shortest_word_respects_labels) {
    // only x=1 letters move forward; the witness must spell 1,1
    bdd_manager mgr(1);
    automaton a(mgr, {0});
    a.add_state(false);
    a.add_state(false);
    a.add_state(true);
    a.add_transition(0, 1, mgr.var(0));
    a.add_transition(1, 2, mgr.var(0));
    a.set_initial(0);
    const auto w = shortest_accepted_word(a);
    ASSERT_TRUE(w.has_value());
    ASSERT_EQ(w->size(), 2u);
    EXPECT_TRUE((*w)[0][0]);
    EXPECT_TRUE((*w)[1][0]);
}

TEST(language_ops, counterexample_none_when_contained) {
    bdd_manager mgr(1);
    const automaton small = ones_chain(mgr, 2);
    const automaton big = ones_chain(mgr, 5);
    EXPECT_FALSE(containment_counterexample(small, big).has_value());
}

TEST(language_ops, counterexample_is_in_a_not_in_b) {
    bdd_manager mgr(1);
    const automaton small = ones_chain(mgr, 2);
    const automaton big = ones_chain(mgr, 5);
    const auto w = containment_counterexample(big, small);
    ASSERT_TRUE(w.has_value());
    EXPECT_TRUE(accepts(big, *w));
    EXPECT_FALSE(accepts(small, *w));
    // shortest such word: three ones
    EXPECT_EQ(w->size(), 3u);
}

TEST(language_ops, counterexample_matches_language_contained) {
    bdd_manager mgr(1);
    const automaton a = length_exactly(mgr, 2);
    const automaton b = ones_chain(mgr, 4);
    EXPECT_EQ(language_contained(a, b),
              !containment_counterexample(a, b).has_value());
    EXPECT_EQ(language_contained(b, a),
              !containment_counterexample(b, a).has_value());
}

// ---------------------------------------------------------------------------
// sampling
// ---------------------------------------------------------------------------

TEST(language_ops, sampled_words_are_accepted) {
    bdd_manager mgr(1);
    const automaton a = ones_chain(mgr, 6);
    const auto words = sample_accepted_words(a, 10, 6, 42);
    EXPECT_FALSE(words.empty());
    for (const word& w : words) {
        EXPECT_TRUE(accepts(a, w));
        EXPECT_LE(w.size(), 6u);
    }
}

TEST(language_ops, sampling_empty_language_yields_nothing) {
    bdd_manager mgr(1);
    automaton a(mgr, {0});
    a.add_state(false);
    a.set_initial(0);
    EXPECT_TRUE(sample_accepted_words(a, 10, 5, 1).empty());
}

TEST(language_ops, sampling_is_deterministic_per_seed) {
    bdd_manager mgr(1);
    const automaton a = ones_chain(mgr, 5);
    const auto w1 = sample_accepted_words(a, 5, 5, 7);
    const auto w2 = sample_accepted_words(a, 5, 5, 7);
    EXPECT_EQ(w1, w2);
}

// ---------------------------------------------------------------------------
// property sweep: set algebra on random chain/length automata
// ---------------------------------------------------------------------------

class lang_algebra : public ::testing::TestWithParam<std::size_t> {};

TEST_P(lang_algebra, union_difference_roundtrip) {
    const std::size_t n = GetParam();
    bdd_manager mgr(1);
    const automaton a = ones_chain(mgr, n);
    const automaton b = length_exactly(mgr, n);
    // (a \ b) union (a intersect b) == a
    const automaton left =
        union_automata(difference(a, b), product(a, b));
    EXPECT_TRUE(language_equivalent(left, a));
    // a subset (a union b); b subset (a union b)
    const automaton u = union_automata(a, b);
    EXPECT_TRUE(language_contained(a, u));
    EXPECT_TRUE(language_contained(b, u));
    // difference against the union is empty
    EXPECT_TRUE(language_empty(difference(a, u)));
}

INSTANTIATE_TEST_SUITE_P(sizes, lang_algebra,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

} // namespace
} // namespace leq
