/// \file test_lint.cpp
/// \brief `leq_lint` self-test: the seeded-violation fixture must be fully
/// reported, and the real tree must be clean against the checked-in config.
///
/// The suite links the analyzer core (tools/lint_core.cpp) directly, so the
/// checks run in-process; CI additionally runs the `leq_lint` binary.

#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace {

using leq_lint::lint_config;
using leq_lint::lint_report;
using leq_lint::violation;

const char* const kRepoRoot = LEQ_SOURCE_DIR;
const std::string kFixtureRoot =
    std::string(LEQ_SOURCE_DIR) + "/tests/lint_fixture";

lint_config load_config_or_die(const std::string& path) {
    std::vector<std::string> errors;
    lint_config config = leq_lint::load_config(path, errors);
    EXPECT_TRUE(errors.empty()) << "config errors in " << path;
    return config;
}

std::set<std::pair<std::string, std::string>> file_rule_pairs(
    const lint_report& report) {
    std::set<std::pair<std::string, std::string>> pairs;
    for (const violation& v : report.violations) {
        pairs.emplace(v.file, v.rule);
    }
    return pairs;
}

// ---------------------------------------------------------------------------
// the seeded-violation fixture
// ---------------------------------------------------------------------------

TEST(lint_fixture, reports_exactly_the_seeded_violations) {
    const lint_config config = load_config_or_die(kFixtureRoot + "/.leq_lint");
    const lint_report report = leq_lint::lint_tree(kFixtureRoot, config);

    const std::set<std::pair<std::string, std::string>> expected = {
        {"src/bdd/upward.cpp", "layering"},
        {"src/net/pool.cpp", "concurrency"},
        {"src/img/explosive.hpp", "pragma-once"},
        {"src/img/explosive.hpp", "using-namespace"},
        {"src/img/explosive.hpp", "dtor-throw"},
        {"src/eq/style.cpp", "include-style"},
    };
    EXPECT_EQ(file_rule_pairs(report), expected);

    // pool.cpp seeds two concurrency sites: the <mutex> include and the
    // std::mutex member — both lines must be flagged
    const auto concurrency_hits = std::count_if(
        report.violations.begin(), report.violations.end(),
        [](const violation& v) { return v.rule == "concurrency"; });
    EXPECT_EQ(concurrency_hits, 2);
    EXPECT_EQ(report.violations.size(), 7u);

    // the sanctioned seam and the clean file must not appear at all
    for (const violation& v : report.violations) {
        EXPECT_NE(v.file, "src/cli/batch.cpp") << v.message;
        EXPECT_NE(v.file, "src/rel/ok.cpp") << v.message;
    }
}

TEST(lint_fixture, violations_carry_locations_and_survive_json) {
    const lint_config config = load_config_or_die(kFixtureRoot + "/.leq_lint");
    const lint_report report = leq_lint::lint_tree(kFixtureRoot, config);
    for (const violation& v : report.violations) {
        EXPECT_GE(v.line, 1) << v.file << ": " << v.message;
        EXPECT_FALSE(v.message.empty());
    }
    const std::string json = leq_lint::to_json(report);
    EXPECT_NE(json.find("\"violation_count\":7"), std::string::npos) << json;
    EXPECT_NE(json.find("\"rule\":\"layering\""), std::string::npos);
    EXPECT_NE(json.find("\"file\":\"src/bdd/upward.cpp\""),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// the real tree: lint must run clean against the checked-in .leq_lint
// ---------------------------------------------------------------------------

TEST(lint_tree, repository_is_clean) {
    const lint_config config =
        load_config_or_die(std::string(kRepoRoot) + "/.leq_lint");
    const lint_report report = leq_lint::lint_tree(kRepoRoot, config);
    for (const violation& v : report.violations) {
        ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                      << v.message;
    }
    // the walk must actually have covered the library
    EXPECT_GT(report.files_scanned, 50u);
}

// ---------------------------------------------------------------------------
// core units
// ---------------------------------------------------------------------------

TEST(lint_core, stripper_blanks_comments_and_strings_but_keeps_includes) {
    const std::string in =
        "#include \"bdd/bdd.hpp\"\n"
        "// std::mutex in a comment\n"
        "const char* s = \"std::mutex in a string\";\n"
        "/* block std::thread\n   spanning lines */ int x;\n";
    const std::string out = leq_lint::strip_comments_and_strings(in);
    EXPECT_NE(out.find("bdd/bdd.hpp"), std::string::npos);
    EXPECT_EQ(out.find("std::mutex"), std::string::npos);
    EXPECT_EQ(out.find("std::thread"), std::string::npos);
    EXPECT_NE(out.find("int x;"), std::string::npos);
    // line structure is preserved for line numbering
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
              std::count(in.begin(), in.end(), '\n'));
}

TEST(lint_core, digit_separators_are_not_char_literals) {
    const std::string in = "const int big = 1'000'000; int y = 2;\n";
    const std::string out = leq_lint::strip_comments_and_strings(in);
    EXPECT_NE(out.find("int y = 2;"), std::string::npos);
}

TEST(lint_core, config_rejects_unknown_directives) {
    std::vector<std::string> errors;
    leq_lint::parse_config("layer-edge a b\nfrobnicate c\nallow r f\n",
                           errors);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("frobnicate"), std::string::npos);
}

TEST(lint_core, config_edge_and_allow_semantics) {
    std::vector<std::string> errors;
    const lint_config config = leq_lint::parse_config(
        "layer-edge root *\nlayer-edge rel bdd\nallow concurrency f.cpp\n",
        errors);
    ASSERT_TRUE(errors.empty());
    EXPECT_TRUE(config.edge_allowed("rel", "bdd"));
    EXPECT_FALSE(config.edge_allowed("bdd", "rel"));
    EXPECT_TRUE(config.edge_allowed("root", "anything"));
    EXPECT_TRUE(config.is_allowed("concurrency", "f.cpp"));
    EXPECT_FALSE(config.is_allowed("concurrency", "g.cpp"));
    EXPECT_FALSE(config.is_allowed("layering", "f.cpp"));
}

TEST(lint_core, missing_config_is_an_error) {
    std::vector<std::string> errors;
    leq_lint::load_config("/nonexistent/.leq_lint", errors);
    EXPECT_FALSE(errors.empty());
}

TEST(lint_core, lint_file_flags_cross_layer_include) {
    const std::vector<std::string> layers = {"bdd", "rel"};
    std::vector<std::string> errors;
    const lint_config config =
        leq_lint::parse_config("layer-edge rel bdd\n", errors);
    std::vector<violation> out;
    leq_lint::lint_file("src/bdd/x.cpp", "#include \"rel/relation.hpp\"\n",
                        layers, config, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "layering");
    EXPECT_EQ(out[0].line, 1);
    leq_lint::lint_file("src/rel/y.cpp", "#include \"bdd/bdd.hpp\"\n",
                        layers, config, out);
    EXPECT_EQ(out.size(), 1u); // the sanctioned direction adds nothing
}

} // namespace
