/// \file test_parser_errors.cpp
/// \brief Failure injection for the text front ends: malformed BLIF and
/// KISS2 must produce clean errors, never crashes or silent misparses; and
/// valid corner inputs must round-trip.

#include "automata/kiss.hpp"
#include "gen/scenario.hpp"
#include "gen/shrink.hpp"
#include "net/blif.hpp"
#include "net/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

// ---------------------------------------------------------------------------
// BLIF
// ---------------------------------------------------------------------------

TEST(blif_errors, empty_input) {
    EXPECT_THROW((void)read_blif_string(""), std::runtime_error);
}

TEST(blif_errors, cube_width_mismatch) {
    const char* text = R"(
.model bad
.inputs a b
.outputs z
.names a b z
1 1
.end
)";
    EXPECT_THROW((void)read_blif_string(text), std::runtime_error);
}

TEST(blif_errors, undriven_output) {
    const char* text = R"(
.model bad
.inputs a
.outputs z
.end
)";
    EXPECT_THROW(read_blif_string(text).validate(), std::runtime_error);
}

TEST(blif_errors, combinational_cycle) {
    const char* text = R"(
.model loop
.inputs a
.outputs z
.names z2 z
1 1
.names z z2
1 1
.end
)";
    EXPECT_THROW(read_blif_string(text).validate(), std::runtime_error);
}

TEST(blif_errors, bad_latch_line) {
    const char* text = R"(
.model bad
.inputs a
.outputs z
.latch a
.names a z
1 1
.end
)";
    EXPECT_THROW((void)read_blif_string(text), std::runtime_error);
}

TEST(blif_errors, garbage_cube_characters) {
    const char* text = R"(
.model bad
.inputs a
.outputs z
.names a z
x 1
.end
)";
    EXPECT_THROW((void)read_blif_string(text), std::runtime_error);
}

TEST(blif_roundtrip, families_survive_write_read) {
    for (int id = 0; id < 4; ++id) {
        const network net = id == 0   ? make_counter(4)
                            : id == 1 ? make_lfsr(5, {2})
                            : id == 2 ? make_traffic_controller()
                                      : make_paper_example();
        const network back = read_blif_string(write_blif_string(net));
        EXPECT_EQ(back.num_inputs(), net.num_inputs());
        EXPECT_EQ(back.num_outputs(), net.num_outputs());
        EXPECT_EQ(back.num_latches(), net.num_latches());
        // behaviour must survive exactly
        std::vector<bool> sa = net.initial_state();
        std::vector<bool> sb = back.initial_state();
        std::uint32_t lcg = 5u + static_cast<std::uint32_t>(id);
        for (int t = 0; t < 64; ++t) {
            std::vector<bool> in(net.num_inputs());
            for (auto&& bit : in) {
                lcg = lcg * 1664525u + 1013904223u;
                bit = (lcg >> 16) & 1u;
            }
            const auto ra = net.simulate(sa, in);
            const auto rb = back.simulate(sb, in);
            ASSERT_EQ(ra.outputs, rb.outputs) << net.name() << " t=" << t;
            sa = ra.next_state;
            sb = rb.next_state;
        }
    }
}

// ---------------------------------------------------------------------------
// KISS
// ---------------------------------------------------------------------------

bdd_manager& scratch_mgr() {
    static bdd_manager mgr(8);
    return mgr;
}

automaton parse(const std::string& text, std::size_t ni, std::size_t no) {
    std::vector<std::uint32_t> in, out;
    for (std::size_t k = 0; k < ni; ++k) {
        in.push_back(static_cast<std::uint32_t>(k));
    }
    for (std::size_t k = 0; k < no; ++k) {
        out.push_back(static_cast<std::uint32_t>(ni + k));
    }
    return read_kiss_string(text, scratch_mgr(), in, out);
}

TEST(kiss_errors, missing_header) {
    EXPECT_THROW((void)parse("0 a b 0\n", 1, 1), std::runtime_error);
}

TEST(kiss_errors, input_width_mismatch) {
    const char* text = ".i 2\n.o 1\n.r a\n0 a a 1\n";
    EXPECT_THROW((void)parse(text, 2, 1), std::runtime_error);
}

TEST(kiss_errors, output_width_mismatch) {
    const char* text = ".i 1\n.o 2\n.r a\n0 a a 1\n";
    EXPECT_THROW((void)parse(text, 1, 2), std::runtime_error);
}

TEST(kiss_errors, header_var_count_mismatch) {
    const char* text = ".i 3\n.o 1\n.r a\n000 a a 1\n";
    EXPECT_THROW((void)parse(text, 1, 1), std::runtime_error);
}

TEST(kiss_errors, truncated_transition_line) {
    const char* text = ".i 1\n.o 1\n.r a\n0 a a\n";
    EXPECT_THROW((void)parse(text, 1, 1), std::runtime_error);
}

TEST(kiss_roundtrip, mealy_machine_survives) {
    const char* text = ".i 1\n.o 1\n.s 2\n.p 4\n.r s0\n"
                       "0 s0 s0 0\n1 s0 s1 1\n0 s1 s0 1\n1 s1 s1 0\n.e\n";
    bdd_manager mgr(2);
    const automaton a = read_kiss_string(text, mgr, {0}, {1});
    const std::string emitted = write_kiss_string(a, {0}, {1});
    const automaton b = read_kiss_string(emitted, mgr, {0}, {1});
    EXPECT_TRUE(language_equivalent(a, b));
    EXPECT_EQ(a.num_states(), b.num_states());
}

TEST(kiss_header, tolerates_leading_comments) {
    const kiss_header h = read_kiss_header("# comment\n.i 3\n.o 2\n");
    EXPECT_EQ(h.num_inputs, 3u);
    EXPECT_EQ(h.num_outputs, 2u);
}

// ---------------------------------------------------------------------------
// shrinker reproducer output: emitted artifacts re-parse, corrupted
// variants hit the same clean error paths as the hand-written cases above
// ---------------------------------------------------------------------------

TEST(reproducer_output, emitted_kiss_reparses_and_corruptions_throw) {
    const scenario sc = make_scenario(scenario_family::arbiter, 1);
    const std::string kiss = network_to_kiss(sc.spec);
    const kiss_header h = read_kiss_header(kiss);
    ASSERT_EQ(h.num_inputs, sc.spec.num_inputs());
    ASSERT_EQ(h.num_outputs, sc.spec.num_outputs());
    EXPECT_NO_THROW(
        (void)parse(kiss, sc.spec.num_inputs(), sc.spec.num_outputs()));

    // truncate the last transition line mid-token
    const std::string truncated = kiss.substr(0, kiss.rfind(' '));
    EXPECT_THROW(
        (void)parse(truncated, sc.spec.num_inputs(), sc.spec.num_outputs()),
        std::runtime_error);
    // lie about the input width
    std::string lying = kiss;
    lying.replace(lying.find(".i "), 4, ".i 9");
    EXPECT_THROW((void)parse(lying, 9, sc.spec.num_outputs()),
                 std::runtime_error);
    // strip the header entirely
    const std::string headerless = kiss.substr(kiss.find(".r"));
    EXPECT_THROW(
        (void)parse(headerless, sc.spec.num_inputs(), sc.spec.num_outputs()),
        std::runtime_error);
}

TEST(reproducer_output, emitted_blif_reparses_and_corruptions_throw) {
    const scenario sc = make_scenario(scenario_family::counter, 1);
    const std::string blif = write_blif_string(sc.fixed);
    EXPECT_NO_THROW((void)read_blif_string(blif));

    // corrupt one cube row into a width mismatch
    std::string bad = blif;
    const std::size_t row = bad.find("\n1");
    ASSERT_NE(row, std::string::npos);
    bad.insert(row + 1, "1");
    EXPECT_THROW((void)read_blif_string(bad), std::runtime_error);
    // break a latch declaration (single-token .latch line)
    std::string badlatch = blif;
    const std::size_t latch = badlatch.find(".latch ");
    ASSERT_NE(latch, std::string::npos);
    const std::size_t eol = badlatch.find('\n', latch);
    badlatch.replace(latch, eol - latch, ".latch x");
    EXPECT_THROW((void)read_blif_string(badlatch), std::runtime_error);
}

} // namespace
