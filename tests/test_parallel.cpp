/// \file test_parallel.cpp
/// \brief The task-parallel image engine (`image_pool` + the relation
/// layer's chunk/dispatch/merge protocol): results must be byte-identical
/// to the sequential chain for every worker count, the deterministic
/// counters (parallel_chunks / transfer_nodes) must not depend on the
/// worker count, replica state must survive relation churn, deadlines must
/// be honored cooperatively, and operands under the fan-out floor must
/// take the sequential path unchanged.

#include "img/image.hpp"
#include "img/parallel.hpp"
#include "net/generator.hpp"
#include "net/netbdd.hpp"
#include "rel/relation.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace {

using namespace leq;

struct circuit_vars {
    std::vector<std::uint32_t> in, cs, ns;
};

std::pair<net_bdds, circuit_vars> setup(bdd_manager& mgr, const network& net) {
    circuit_vars vars;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        vars.in.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        vars.cs.push_back(mgr.new_var());
        vars.ns.push_back(mgr.new_var());
    }
    net_bdds fns = build_net_bdds(mgr, net, vars.in, vars.cs);
    return {std::move(fns), std::move(vars)};
}

/// A mix circuit whose frontiers comfortably clear the engine's
/// operand-size floor, so the pool is genuinely exercised (asserted below
/// via the parallel_chunks counter).
network pool_circuit() {
    structured_spec spec;
    spec.num_inputs = 4;
    spec.num_outputs = 5;
    spec.num_latches = 26;
    spec.seed = 3;
    spec.full_observation = true;
    return make_structured_mix(spec);
}

/// Relation over `fns` with an owned pool wired in when jobs > 0.
struct engine {
    std::unique_ptr<image_pool> pool;
    std::unique_ptr<transition_relation> relation;

    engine(bdd_manager& mgr, const net_bdds& fns, const circuit_vars& vars,
           std::size_t jobs, image_options options = {}) {
        options.solve_jobs = jobs;
        if (jobs > 0) {
            pool = std::make_unique<image_pool>(jobs);
            options.executor = pool.get();
        }
        relation = std::make_unique<transition_relation>(
            transition_relation::next_state(mgr, fns.next_state, vars.cs,
                                            vars.ns, vars.in, options));
        relation->rename_image_to_current();
    }
};

TEST(parallel_image, fixpoint_byte_identical_across_worker_counts) {
    const network net = pool_circuit();
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());

    image_options options;
    const reach_info reference = reachable_states_layered(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, init, options);
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
        options.solve_jobs = jobs;
        const reach_info info = reachable_states_layered(
            mgr, fns.next_state, vars.cs, vars.ns, vars.in, init, options);
        // handle identity, not just logical equality: the parallel engine
        // must drive the coordinator manager through the same allocations
        EXPECT_EQ(info.reached, reference.reached) << "jobs " << jobs;
        EXPECT_EQ(info.depth, reference.depth) << "jobs " << jobs;
        EXPECT_EQ(info.layer_states, reference.layer_states);
        EXPECT_DOUBLE_EQ(info.total_states, reference.total_states);
    }
}

TEST(parallel_image, counters_are_worker_count_independent) {
    const network net = pool_circuit();
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const auto nbits = static_cast<std::uint32_t>(vars.cs.size());

    std::size_t ref_chunks = 0, ref_transfer = 0;
    for (const std::size_t jobs : {1u, 2u, 4u}) {
        engine e(mgr, fns, vars, jobs);
        (void)reachable_states_layered(*e.relation, init, nbits);
        const relation_stats& s = e.relation->stats();
        if (jobs == 1) {
            ref_chunks = s.parallel_chunks;
            ref_transfer = s.transfer_nodes;
            // the circuit is sized to actually cross the fan-out floor
            EXPECT_GT(ref_chunks, 0u);
            EXPECT_GT(ref_transfer, 0u);
        } else {
            EXPECT_EQ(s.parallel_chunks, ref_chunks) << "jobs " << jobs;
            EXPECT_EQ(s.transfer_nodes, ref_transfer) << "jobs " << jobs;
        }
    }
}

TEST(parallel_image, preimage_matches_sequential) {
    const network net = pool_circuit();
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const auto nbits = static_cast<std::uint32_t>(vars.cs.size());

    engine seq(mgr, fns, vars, 0);
    engine par(mgr, fns, vars, 3);
    // preimage the full reached set — a large, shared-structure operand
    const bdd reached =
        reachable_states_layered(*seq.relation, init, nbits).reached;
    EXPECT_EQ(par.relation->preimage(reached),
              seq.relation->preimage(reached));
    EXPECT_EQ(par.relation->image(reached), seq.relation->image(reached));
}

TEST(parallel_image, pool_outlives_relation_churn) {
    // one pool, many relations: destructors must forget replica state so a
    // later relation at a reused address cannot inherit stale clusters.
    // Alternate between two different circuits to make any stale reuse
    // visible as a wrong image, not just a perf bug.
    const network net_a = pool_circuit();
    structured_spec spec_b;
    spec_b.num_inputs = 4;
    spec_b.num_outputs = 5;
    spec_b.num_latches = 26;
    spec_b.seed = 11;
    spec_b.full_observation = true;
    const network net_b = make_structured_mix(spec_b);

    bdd_manager mgr;
    auto [fns_a, vars] = setup(mgr, net_a);
    net_bdds fns_b = build_net_bdds(mgr, net_b, vars.in, vars.cs);
    const bdd init = state_cube(mgr, vars.cs, net_a.initial_state());
    const auto nbits = static_cast<std::uint32_t>(vars.cs.size());

    engine ref_a(mgr, fns_a, vars, 0);
    engine ref_b(mgr, fns_b, vars, 0);
    const bdd reached_a =
        reachable_states_layered(*ref_a.relation, init, nbits).reached;
    const bdd reached_b =
        reachable_states_layered(*ref_b.relation, init, nbits).reached;

    image_pool pool(2);
    for (int round = 0; round < 3; ++round) {
        for (const bool use_b : {false, true}) {
            image_options options;
            options.solve_jobs = 2;
            options.executor = &pool;
            transition_relation relation = transition_relation::next_state(
                mgr, (use_b ? fns_b : fns_a).next_state, vars.cs, vars.ns,
                vars.in, options);
            relation.rename_image_to_current();
            const bdd reached =
                reachable_states_layered(relation, init, nbits).reached;
            EXPECT_EQ(reached, use_b ? reached_b : reached_a)
                << "round " << round << " circuit " << (use_b ? "b" : "a");
        }
    }
}

TEST(parallel_image, deadline_honored_cooperatively) {
    const network net = pool_circuit();
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const auto nbits = static_cast<std::uint32_t>(vars.cs.size());

    // grow a real frontier first so the deadline trips inside a pooled
    // dispatch, not at the relation-construction check
    engine warm(mgr, fns, vars, 2);
    const bdd reached =
        reachable_states_layered(*warm.relation, init, nbits).reached;

    image_options options;
    options.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(10);
    image_pool pool(2);
    options.solve_jobs = 2;
    options.executor = &pool;
    EXPECT_THROW(
        (void)transition_relation::next_state(mgr, fns.next_state, vars.cs,
                                              vars.ns, vars.in, options),
        relation_deadline_exceeded);

    // a live relation whose budget expires after construction: the pooled
    // dispatch must surface relation_deadline_exceeded from image(), and
    // the pool must stay usable afterwards (fresh relation, fresh budget)
    const auto soon = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(400);
    options.deadline = soon;
    transition_relation relation = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, options);
    relation.rename_image_to_current();
    std::this_thread::sleep_until(soon +
                                  std::chrono::milliseconds(20)); // blow it
    EXPECT_THROW((void)relation.image(reached), relation_deadline_exceeded);

    options.deadline.reset();
    transition_relation fresh = transition_relation::next_state(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, options);
    fresh.rename_image_to_current();
    EXPECT_EQ(fresh.image(reached), warm.relation->image(reached));
}

TEST(parallel_image, small_operands_take_the_sequential_path) {
    // a 3-bit counter's frontiers sit far under the fan-out floor: the
    // engine must fall back to the sequential chain (parallel_chunks
    // stays 0) and still produce the identical fixpoint
    const network net = make_counter(3);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const auto nbits = static_cast<std::uint32_t>(vars.cs.size());

    engine seq(mgr, fns, vars, 0);
    engine par(mgr, fns, vars, 4);
    const reach_info a = reachable_states_layered(*seq.relation, init, nbits);
    const reach_info b = reachable_states_layered(*par.relation, init, nbits);
    EXPECT_EQ(a.reached, b.reached);
    EXPECT_EQ(par.relation->stats().parallel_chunks, 0u);
    EXPECT_EQ(par.relation->stats().transfer_nodes, 0u);
}

} // namespace
