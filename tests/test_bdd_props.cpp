/// \file test_bdd_props.cpp
/// \brief Property sweeps over the BDD package: algebraic identities that
/// must hold for arbitrary functions, checked on seeded random instances.

#include "bdd/bdd.hpp"
#include "bdd/transfer.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace leq {
namespace {

constexpr std::uint32_t nvars = 8;

bdd random_function(bdd_manager& mgr, std::uint32_t seed, std::size_t ops = 60) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::uint32_t> pick(0, nvars - 1);
    bdd f = mgr.literal(pick(rng), (rng() & 1u) != 0);
    for (std::size_t k = 0; k < ops; ++k) {
        const bdd lit = mgr.literal(pick(rng), (rng() & 1u) != 0);
        switch (rng() % 3) {
            case 0: f = f & lit; break;
            case 1: f = f | lit; break;
            default: f = f ^ lit; break;
        }
    }
    return f;
}

class bdd_props : public ::testing::TestWithParam<std::uint32_t> {
protected:
    bdd_manager mgr{nvars};
    bdd f = random_function(mgr, GetParam());
    bdd g = random_function(mgr, GetParam() + 100);
    bdd h = random_function(mgr, GetParam() + 200);
    bdd cube = mgr.cube({1, 3, 5});
};

TEST_P(bdd_props, boolean_algebra) {
    // absorption, distribution, de Morgan — at the canonical-node level
    EXPECT_EQ(f & (f | g), f);
    EXPECT_EQ(f | (f & g), f);
    EXPECT_EQ(f & (g | h), (f & g) | (f & h));
    EXPECT_EQ(!(f & g), (!f) | (!g));
    EXPECT_EQ(!(f | g), (!f) & (!g));
    EXPECT_EQ(f ^ g, (f & !g) | ((!f) & g));
    EXPECT_EQ(mgr.ite(f, g, h), (f & g) | ((!f) & h));
}

TEST_P(bdd_props, implication_and_containment) {
    EXPECT_TRUE((f & g).leq(f));
    EXPECT_TRUE(f.leq(f | g));
    EXPECT_EQ(f.implies(g).is_one(), f.leq(g));
    EXPECT_EQ(f.iff(f), mgr.one());
}

TEST_P(bdd_props, quantifier_identities) {
    // duality, monotonicity, distribution laws
    EXPECT_EQ(mgr.exists(f, cube), !mgr.forall(!f, cube));
    EXPECT_TRUE(mgr.forall(f, cube).leq(f));
    EXPECT_TRUE(f.leq(mgr.exists(f, cube)));
    EXPECT_EQ(mgr.exists(f | g, cube),
              mgr.exists(f, cube) | mgr.exists(g, cube));
    EXPECT_EQ(mgr.forall(f & g, cube),
              mgr.forall(f, cube) & mgr.forall(g, cube));
    // quantifying twice is idempotent
    EXPECT_EQ(mgr.exists(mgr.exists(f, cube), cube), mgr.exists(f, cube));
}

TEST_P(bdd_props, and_exists_is_fused_relational_product) {
    EXPECT_EQ(mgr.and_exists(f, g, cube), mgr.exists(f & g, cube));
    // special cases
    EXPECT_EQ(mgr.and_exists(f, mgr.one(), cube), mgr.exists(f, cube));
    EXPECT_EQ(mgr.and_exists(f, mgr.zero(), cube), mgr.zero());
}

TEST_P(bdd_props, nary_and_exists_matches_folded_conjunction) {
    const bdd k = random_function(mgr, GetParam() + 300);
    EXPECT_EQ(mgr.and_exists({f, g, h, k}, cube),
              mgr.exists(f & g & h & k, cube));
    EXPECT_EQ(mgr.and_exists({f, g, h}, cube), mgr.exists(f & g & h, cube));
    // degenerate spans collapse onto the cached unary/binary cores
    EXPECT_EQ(mgr.and_exists({f, g}, cube), mgr.and_exists(f, g, cube));
    EXPECT_EQ(mgr.and_exists({f}, cube), mgr.exists(f, cube));
    EXPECT_EQ(mgr.and_exists(std::vector<bdd>{}, cube), mgr.one());
    // absorbing / neutral operands and complementary pairs
    EXPECT_EQ(mgr.and_exists({f, mgr.zero(), g}, cube), mgr.zero());
    EXPECT_EQ(mgr.and_exists({f, mgr.one(), g}, cube),
              mgr.and_exists(f, g, cube));
    EXPECT_EQ(mgr.and_exists({f, !f, g}, cube), mgr.zero());
    EXPECT_EQ(mgr.and_exists({f, f, g}, cube), mgr.and_exists(f, g, cube));
    // an empty cube is a plain n-ary conjunction
    EXPECT_EQ(mgr.and_exists({f, g, h}, mgr.one()), f & g & h);
}

TEST_P(bdd_props, cofactor_shannon_expansion) {
    const bdd x = mgr.var(2);
    const bdd f1 = mgr.cofactor(f, x);
    const bdd f0 = mgr.cofactor(f, !x);
    EXPECT_EQ(f, (x & f1) | ((!x) & f0));
    // cofactors are independent of the cofactored variable
    for (const std::uint32_t v : mgr.support(f1)) { EXPECT_NE(v, 2u); }
}

TEST_P(bdd_props, constrain_and_restrict_image_property) {
    if (g.is_zero()) { GTEST_SKIP(); }
    // both generalized cofactors agree with f on the care set
    EXPECT_EQ(mgr.constrain(f, g) & g, f & g);
    EXPECT_EQ(mgr.restrict_dc(f, g) & g, f & g);
    // constrain by one is the identity
    EXPECT_EQ(mgr.constrain(f, mgr.one()), f);
    EXPECT_EQ(mgr.restrict_dc(f, mgr.one()), f);
}

TEST_P(bdd_props, sat_count_inclusion_exclusion) {
    const double cf = mgr.sat_count(f, nvars);
    const double cg = mgr.sat_count(g, nvars);
    const double cand = mgr.sat_count(f & g, nvars);
    const double cor = mgr.sat_count(f | g, nvars);
    EXPECT_EQ(cf + cg, cand + cor);
    EXPECT_EQ(mgr.sat_count(!f, nvars), 256.0 - cf);
}

TEST_P(bdd_props, support_is_tight) {
    // every support variable actually matters; every other one does not
    const auto support = mgr.support(f);
    for (std::uint32_t v = 0; v < nvars; ++v) {
        const bdd pos = mgr.cofactor(f, mgr.var(v));
        const bdd neg = mgr.cofactor(f, mgr.nvar(v));
        const bool in_support =
            std::find(support.begin(), support.end(), v) != support.end();
        EXPECT_EQ(pos != neg, in_support) << "var " << v;
    }
}

TEST_P(bdd_props, pick_cube_satisfies) {
    if (f.is_zero()) { GTEST_SKIP(); }
    const bdd cube_of_f = mgr.pick_cube(f);
    EXPECT_TRUE(cube_of_f.leq(f));
    EXPECT_FALSE(cube_of_f.is_zero());
}

TEST_P(bdd_props, dag_size_at_least_agrees_with_dag_size) {
    // the early-exit probe must be exactly "dag_size(f) >= n" at every
    // threshold around the true size, for plain and complemented handles,
    // and repeated probes (epoch-stamped scratch) must not interfere
    for (const bdd& x : {f, !f, f & g, mgr.one(), mgr.zero()}) {
        const std::size_t size = mgr.dag_size(x);
        for (const std::size_t n :
             {std::size_t{0}, std::size_t{1}, size - 1, size, size + 1,
              size * 2 + 3}) {
            EXPECT_EQ(mgr.dag_size_at_least(x, n), size >= n)
                << "size " << size << " n " << n;
        }
    }
}

TEST_P(bdd_props, permute_round_trip_and_composition) {
    std::vector<std::uint32_t> swap02(nvars);
    for (std::uint32_t v = 0; v < nvars; ++v) { swap02[v] = v; }
    std::swap(swap02[0], swap02[2]);
    EXPECT_EQ(mgr.permute(mgr.permute(f, swap02), swap02), f);
    // permute == compose_vector with variable substitutions
    EXPECT_EQ(mgr.permute(f, swap02),
              mgr.compose_vector(f, {{0, mgr.var(2)}, {2, mgr.var(0)}}));
}

TEST_P(bdd_props, compose_inverts_expansion) {
    // f == ite(x, f|x=1, f|x=0) composed back with anything for x when f
    // does not depend on x after cofactoring
    const bdd f1 = mgr.cofactor(f, mgr.var(4));
    EXPECT_EQ(mgr.compose(f1, 4, g), f1); // x4 absent from f1
    // compose with the variable itself is the identity
    EXPECT_EQ(mgr.compose(f, 4, mgr.var(4)), f);
}

TEST_P(bdd_props, transfer_is_deterministic_and_memo_shares) {
    // the cross-manager copy is a pure function of the source DAG: two
    // transfers of the same function into the same destination return the
    // identical handle, the per-call memo visits every distinct
    // nonterminal exactly once (so the count equals dag_size minus the
    // terminal), and a round trip restores the original handle
    bdd_manager dst(nvars);
    std::size_t first = 0, second = 0;
    const bdd copy_a = bdd_transfer(mgr, f, dst, first);
    const bdd copy_b = bdd_transfer(mgr, f, dst, second);
    EXPECT_EQ(copy_a, copy_b);
    EXPECT_EQ(first, second);
    if (!f.is_const()) {
        EXPECT_EQ(first, mgr.dag_size(f) - 1);
        EXPECT_EQ(dst.dag_size(copy_a), mgr.dag_size(f));
    } else {
        EXPECT_EQ(first, 0u);
    }
    EXPECT_EQ(bdd_transfer(dst, copy_a, mgr), f);
    EXPECT_DOUBLE_EQ(dst.sat_count(copy_a, nvars), mgr.sat_count(f, nvars));

    // determinism across destinations: a second, fresh manager reports the
    // same transfer count (the memo is keyed on source nodes only)
    bdd_manager other(nvars);
    std::size_t fresh = 0;
    const bdd copy_c = bdd_transfer(mgr, f, other, fresh);
    EXPECT_EQ(fresh, first);
    EXPECT_EQ(other.dag_size(copy_c), dst.dag_size(copy_a));
}

TEST_P(bdd_props, transfer_preserves_structure_and_complement_edges) {
    // complement handles transfer to complement handles (the root bit
    // travels on the handle, never into the copied nodes), and boolean
    // structure commutes with the copy: transfer(f) op transfer(g) ==
    // transfer(f op g)
    bdd_manager dst(nvars);
    const bdd cf = bdd_transfer(mgr, f, dst);
    const bdd cg = bdd_transfer(mgr, g, dst);
    EXPECT_EQ(bdd_transfer(mgr, !f, dst), !cf);
    EXPECT_EQ(bdd_transfer(mgr, f & g, dst), cf & cg);
    EXPECT_EQ(bdd_transfer(mgr, f ^ g, dst), cf ^ cg);
    EXPECT_EQ(bdd_transfer(mgr, mgr.exists(f, cube), dst),
              dst.exists(cf, dst.cube({1, 3, 5})));
}

TEST(bdd_transfer_errors, rejects_foreign_handles_and_mismatched_shapes) {
    bdd_manager a(4);
    bdd_manager b(4);
    bdd_manager narrow(3);
    const bdd f = a.var(0) & !a.var(2);
    EXPECT_THROW((void)bdd_transfer(b, f, a), std::invalid_argument);
    EXPECT_THROW((void)bdd_transfer(a, f, narrow), std::invalid_argument);
    // src == dst degenerates to a plain copy
    EXPECT_EQ(bdd_transfer(a, f, a), f);
    // constants transfer to the destination's constants
    bdd_manager c(4);
    EXPECT_EQ(bdd_transfer(a, a.one(), c), c.one());
    EXPECT_EQ(bdd_transfer(a, a.zero(), c), c.zero());
}

TEST(bdd_transfer_errors, rejects_variable_order_mismatch) {
    bdd_manager a(4);
    bdd_manager b(4);
    const bdd f = (a.var(0) & a.var(1)) | a.var(3);
    b.reorder_to({3, 1, 2, 0});
    EXPECT_THROW((void)bdd_transfer(a, f, b), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(seeds, bdd_props, ::testing::Range(1u, 16u));

// ---------------------------------------------------------------------------
// memory-discipline knobs (bdd_manager_options): cache growth and the GC
// trigger must follow their documented policies, and identical workloads
// must produce identical functions whatever the tuning
// ---------------------------------------------------------------------------

constexpr std::uint32_t big_nvars = 16;

/// Enough distinct nodes to outgrow a 2^8-entry cache several times over.
bdd big_function(bdd_manager& mgr, std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::uint32_t> pick(0, big_nvars - 1);
    bdd f = mgr.literal(pick(rng), (rng() & 1u) != 0);
    for (std::size_t k = 0; k < 400; ++k) {
        const bdd lit = mgr.literal(pick(rng), (rng() & 1u) != 0);
        switch (rng() % 3) {
            case 0: f = f & lit; break;
            case 1: f = f | lit; break;
            default: f = f ^ lit; break;
        }
        if (k % 5 == 0) { f = f ^ (mgr.var(pick(rng)) & f); }
    }
    return f;
}

TEST(bdd_manager_options_test, cache_grows_geometrically_with_unique_table) {
    leq::bdd_manager_options small;
    small.cache_bits = 8;
    small.max_cache_bits = 16;
    bdd_manager mgr(big_nvars, small);
    EXPECT_EQ(mgr.stats().cache_entries, std::size_t{1} << 8);
    const bdd f = big_function(mgr, 7);
    // the node counters are refreshed by mark-and-sweep, so force one
    ASSERT_GT(mgr.live_node_count(), 0u);
    ASSERT_GT(mgr.stats().allocated_nodes, std::size_t{1} << 9)
        << "workload too small to exercise cache growth";
    EXPECT_GT(mgr.stats().cache_resizes, 0u);
    EXPECT_GT(mgr.stats().cache_entries, std::size_t{1} << 8);
    EXPECT_LE(mgr.stats().cache_entries, std::size_t{1} << 16);
    // tuning must not change the function computed
    bdd_manager reference(big_nvars);
    EXPECT_EQ(mgr.sat_count(f, big_nvars),
              reference.sat_count(big_function(reference, 7), big_nvars));
}

TEST(bdd_manager_options_test, max_cache_bits_pins_a_fixed_cache) {
    leq::bdd_manager_options pinned;
    pinned.cache_bits = 10;
    pinned.max_cache_bits = 10; // the historical never-resizing cache
    bdd_manager mgr(big_nvars, pinned);
    (void)big_function(mgr, 7);
    EXPECT_EQ(mgr.stats().cache_entries, std::size_t{1} << 10);
    EXPECT_EQ(mgr.stats().cache_resizes, 0u);
}

TEST(bdd_manager_options_test, out_of_range_options_are_clamped) {
    leq::bdd_manager_options wild;
    wild.cache_bits = 2;      // below the 8-bit floor
    wild.max_cache_bits = 4;  // below cache_bits after clamping
    wild.gc_threshold = 1;    // below the 2^10 floor
    bdd_manager mgr(4, wild);
    EXPECT_EQ(mgr.stats().cache_entries, std::size_t{1} << 8);
    EXPECT_EQ(mgr.stats().gc_threshold, std::size_t{1} << 10);
}

TEST(bdd_manager_options_test, legacy_ctor_pins_initial_cache_size) {
    bdd_manager mgr(4, 12u);
    EXPECT_EQ(mgr.stats().cache_entries, std::size_t{1} << 12);
}

TEST(bdd_manager_options_test, adaptive_gc_trigger_tracks_live_nodes) {
    leq::bdd_manager_options opts;
    opts.gc_threshold = std::size_t{1} << 10;
    opts.adaptive_gc = true;
    bdd_manager mgr(big_nvars, opts);
    // churn: build and drop garbage until collections happen
    for (std::uint32_t round = 0; round < 12; ++round) {
        (void)big_function(mgr, 100 + round);
    }
    const auto& stats = mgr.stats();
    ASSERT_GT(stats.gc_runs, 0u);
    // the trigger never drops below the configured floor, and after a
    // productive collection (all garbage above) it stays proportional to
    // the live set / arena instead of ratcheting monotonically
    EXPECT_GE(stats.gc_threshold, std::size_t{1} << 10);
    EXPECT_LE(stats.gc_threshold,
              std::max({std::size_t{1} << 10, 2 * stats.live_nodes,
                        stats.allocated_nodes / 2}) +
                  (std::size_t{1} << 10));
}

TEST(bdd_manager_options_test, legacy_gc_trigger_only_ratchets_up) {
    leq::bdd_manager_options opts;
    opts.gc_threshold = std::size_t{1} << 10;
    opts.adaptive_gc = false;
    bdd_manager mgr(big_nvars, opts);
    std::size_t last = mgr.stats().gc_threshold;
    for (std::uint32_t round = 0; round < 12; ++round) {
        (void)big_function(mgr, 100 + round);
        EXPECT_GE(mgr.stats().gc_threshold, last);
        last = mgr.stats().gc_threshold;
    }
}

// ---------------------------------------------------------------------------
// computed-cache geometry: associativity, replacement, aging across GC
// ---------------------------------------------------------------------------

TEST(bdd_cache_geometry, ways_are_clamped_to_a_power_of_two_in_range) {
    const auto ways_of = [](unsigned requested) {
        leq::bdd_manager_options opts;
        opts.cache_ways = requested;
        return bdd_manager(4, opts).stats().cache_ways;
    };
    EXPECT_EQ(ways_of(0), 1u);
    EXPECT_EQ(ways_of(1), 1u);
    EXPECT_EQ(ways_of(3), 2u);  // rounded down, not up
    EXPECT_EQ(ways_of(5), 4u);
    EXPECT_EQ(ways_of(16), 16u);
    EXPECT_EQ(ways_of(100), 16u);
    EXPECT_EQ(bdd_manager(4).stats().cache_ways, 4u); // the default
}

TEST(bdd_cache_geometry, replacement_is_deterministic) {
    // identical op sequences against identical geometry must produce
    // identical hit/miss/GC behavior — the move-to-front LRU policy has no
    // hidden state (no randomness, no clocks)
    leq::bdd_manager_options opts;
    opts.cache_bits = 8;
    opts.max_cache_bits = 10; // pinned small: replacement under pressure
    opts.cache_ways = 4;
    opts.gc_threshold = std::size_t{1} << 10;
    bdd_manager a(big_nvars, opts);
    bdd_manager b(big_nvars, opts);
    const bdd fa = big_function(a, 11);
    const bdd fb = big_function(b, 11);
    EXPECT_EQ(fa.index(), fb.index());
    EXPECT_EQ(a.stats().cache_lookups, b.stats().cache_lookups);
    EXPECT_EQ(a.stats().cache_hits, b.stats().cache_hits);
    EXPECT_EQ(a.stats().gc_runs, b.stats().gc_runs);
    EXPECT_EQ(a.stats().allocated_nodes, b.stats().allocated_nodes);
    ASSERT_GT(a.stats().cache_lookups, a.stats().cache_hits)
        << "workload too small to exercise replacement";
}

TEST(bdd_cache_geometry, results_are_identical_across_ways) {
    // associativity only changes what is memoized, never what is computed
    std::uint32_t reference = 0;
    for (unsigned ways : {1u, 2u, 4u, 8u, 16u}) {
        leq::bdd_manager_options opts;
        opts.cache_bits = 8;
        opts.max_cache_bits = 10;
        opts.cache_ways = ways;
        opts.gc_threshold = std::size_t{1} << 10;
        bdd_manager mgr(big_nvars, opts);
        const bdd f = big_function(mgr, 23);
        if (ways == 1) {
            reference = f.index();
        } else {
            EXPECT_EQ(f.index(), reference) << "ways=" << ways;
        }
    }
}

TEST(bdd_cache_geometry, entries_age_across_gc_instead_of_dying) {
    bdd_manager mgr(8);
    const bdd f = mgr.var(0);
    const bdd g = mgr.var(1);
    const bdd h1 = f & g; // seeds the and-op cache entry
    mgr.collect_garbage();
    const std::size_t hits = mgr.stats().cache_hits;
    const bdd h2 = f & g; // every operand is externally held, so the entry
                          // must have survived the sweep with an older age
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(mgr.stats().cache_hits, hits + 1)
        << "garbage collection dropped a cache entry whose key and result "
           "are all live";
}

TEST(bdd_cache_geometry, clear_on_gc_option_restores_the_old_discipline) {
    leq::bdd_manager_options opts;
    opts.cache_age_on_gc = false;
    bdd_manager mgr(8, opts);
    const bdd f = mgr.var(0);
    const bdd g = mgr.var(1);
    const bdd h1 = f & g;
    mgr.collect_garbage();
    const std::size_t hits = mgr.stats().cache_hits;
    const bdd h2 = f & g;
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(mgr.stats().cache_hits, hits)
        << "cache_age_on_gc=false must clear the whole cache at every "
           "collection";
}

TEST(bdd_cache_geometry, growth_migrates_surviving_entries) {
    leq::bdd_manager_options opts;
    opts.cache_bits = 8;
    opts.max_cache_bits = 16;
    bdd_manager mgr(6000, opts);
    const bdd f = mgr.var(0);
    const bdd g = mgr.var(1);
    const bdd h1 = f & g; // the sentinel entry that must survive growth
    // grow the unique table with variable nodes only — no cache traffic, so
    // the sentinel cannot be evicted by replacement, only lost by a
    // clear-on-grow (the regression this test pins against)
    for (std::uint32_t v = 2; v < 6000; ++v) { (void)mgr.var(v); }
    ASSERT_GT(mgr.stats().cache_resizes, 0u)
        << "workload too small to trigger cache growth";
    const std::size_t hits = mgr.stats().cache_hits;
    const bdd h2 = f & g;
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(mgr.stats().cache_hits, hits + 1)
        << "rehash-migration dropped a surviving cache entry";
}

} // namespace
} // namespace leq
