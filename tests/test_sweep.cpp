/// \file test_sweep.cpp
/// \brief Netlist sweep: constant propagation, wire collapse, dead logic
/// removal — always preserving IO behaviour.

#include "eq/resynth.hpp" // simulation_equivalent
#include "gen/scenario.hpp"
#include "net/compose.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/sweep.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

// ---------------------------------------------------------------------------
// targeted transformations
// ---------------------------------------------------------------------------

TEST(sweep, collapses_buffer_chains) {
    network net("buffers");
    net.add_input("a");
    net.add_node("b1", {"a"}, {"1"});
    net.add_node("b2", {"b1"}, {"1"});
    net.add_node("b3", {"b2"}, {"1"});
    net.add_node("z", {"b3"}, {"1"});
    net.add_output("z");
    net.validate();
    sweep_stats stats;
    const network swept = sweep_network(net, &stats);
    EXPECT_TRUE(simulation_equivalent(net, swept, 2, 32, 1));
    EXPECT_LT(swept.nodes().size(), net.nodes().size());
    EXPECT_GE(stats.wires_collapsed, 3u);
}

TEST(sweep, folds_inverter_pairs) {
    network net("inverters");
    net.add_input("a");
    net.add_node("n1", {"a"}, {"0"});
    net.add_node("n2", {"n1"}, {"0"});
    net.add_node("z", {"n2"}, {"1"});
    net.add_output("z");
    net.validate();
    const network swept = sweep_network(net);
    EXPECT_TRUE(simulation_equivalent(net, swept, 2, 32, 2));
    // z must reduce to a buffer of a (double negation folded)
    EXPECT_LE(swept.nodes().size(), 1u);
}

TEST(sweep, propagates_constants_through_logic) {
    network net("constants");
    net.add_input("a");
    net.add_node("zero", {"a"}, {});        // constant 0
    net.add_node("and", {"a", "zero"}, {"11"});
    net.add_node("or", {"a", "zero"}, {"1-", "-1"});
    net.add_node("z1", {"and"}, {"1"});     // == 0
    net.add_node("z2", {"or"}, {"1"});      // == a
    net.add_output("z1");
    net.add_output("z2");
    net.validate();
    sweep_stats stats;
    const network swept = sweep_network(net, &stats);
    EXPECT_TRUE(simulation_equivalent(net, swept, 2, 32, 3));
    EXPECT_GT(stats.constants_propagated, 0u);
}

TEST(sweep, removes_dead_logic_and_latches) {
    network net("deadwood");
    net.add_input("a");
    net.add_latch("a", "used", false);
    net.add_latch("a", "unused", false);
    net.add_node("noise", {"unused"}, {"0"}); // observed by nobody
    net.add_node("z", {"used"}, {"1"});
    net.add_output("z");
    net.validate();
    sweep_stats stats;
    const network swept = sweep_network(net, &stats);
    EXPECT_TRUE(simulation_equivalent(net, swept, 2, 32, 4));
    EXPECT_EQ(swept.num_latches(), 1u);
    EXPECT_EQ(stats.latches_before, 2u);
    EXPECT_EQ(stats.latches_after, 1u);
}

TEST(sweep, keeps_output_names_for_aliased_outputs) {
    network net("alias_out");
    net.add_input("a");
    net.add_node("z", {"a"}, {"1"}); // output is a buffer of the input
    net.add_output("z");
    net.validate();
    const network swept = sweep_network(net);
    ASSERT_EQ(swept.num_outputs(), 1u);
    EXPECT_EQ(swept.signal_name(swept.outputs()[0]), "z");
    EXPECT_TRUE(simulation_equivalent(net, swept, 2, 16, 5));
}

TEST(sweep, constant_output_survives) {
    network net("const_out");
    net.add_input("a");
    net.add_node("k1", {"a"}, {"0", "1"}); // tautology: constant 1
    net.add_node("z", {"k1"}, {"1"});
    net.add_output("z");
    net.add_latch("a", "s", false); // keep it sequential
    net.add_node("zz", {"s"}, {"1"});
    net.add_output("zz");
    net.validate();
    const network swept = sweep_network(net);
    EXPECT_TRUE(simulation_equivalent(net, swept, 2, 32, 6));
}

TEST(sweep, latch_fed_by_inverted_wire) {
    network net("inv_latch");
    net.add_input("a");
    net.add_node("na", {"a"}, {"0"});
    net.add_latch("na", "s", true);
    net.add_node("z", {"s"}, {"1"});
    net.add_output("z");
    net.validate();
    const network swept = sweep_network(net);
    EXPECT_TRUE(simulation_equivalent(net, swept, 4, 64, 7));
}

// ---------------------------------------------------------------------------
// idempotence and behaviour preservation across the generator families
// ---------------------------------------------------------------------------

class sweep_families : public ::testing::TestWithParam<int> {};

TEST_P(sweep_families, behaviour_preserved_and_idempotent) {
    const int id = GetParam();
    const network net = id == 0   ? make_counter(5)
                        : id == 1 ? make_lfsr(6, {1, 3})
                        : id == 2 ? make_traffic_controller()
                        : id == 3 ? make_shift_xor(5)
                        : id == 4 ? make_paper_example()
                                  : [] {
                              structured_spec spec;
                              spec.num_latches = 10;
                              spec.seed = 3;
                              return make_structured_mix(spec);
                          }();
    sweep_stats stats;
    const network once = sweep_network(net, &stats);
    EXPECT_TRUE(simulation_equivalent(net, once, 4, 256, 11u + id));
    EXPECT_LE(once.nodes().size(), net.nodes().size() + net.num_outputs());
    const network twice = sweep_network(once);
    EXPECT_TRUE(simulation_equivalent(once, twice, 2, 128, 13u + id));
    EXPECT_EQ(twice.nodes().size(), once.nodes().size());
    EXPECT_EQ(twice.num_latches(), once.num_latches());
}

INSTANTIATE_TEST_SUITE_P(families, sweep_families, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// the motivating case: cleanup after composition
// ---------------------------------------------------------------------------

TEST(sweep, cleans_up_composed_networks) {
    const network original = make_counter(4);
    const split_result split = split_latches(original, {3});
    const network composed = compose_networks(
        split.fixed, split.part, split.u_names, split.v_names);
    sweep_stats stats;
    const network swept = sweep_network(composed, &stats);
    EXPECT_TRUE(simulation_equivalent(composed, swept, 4, 256, 17));
    EXPECT_TRUE(simulation_equivalent(original, swept, 4, 256, 18));
    // composition inserts pass-through wiring the sweep must pay back
    EXPECT_LE(swept.nodes().size(), composed.nodes().size());
}

TEST(sweep, random_circuits_survive) {
    for (std::uint32_t k = 1; k <= 8; ++k) {
        const std::uint32_t seed = test_seed(k);
        const network net = make_random_net(seed, 3, 3, 5, 4);
        const network swept = sweep_network(net);
        EXPECT_TRUE(simulation_equivalent(net, swept, 3, 128, seed))
            << "seed " << seed;
    }
}

} // namespace
