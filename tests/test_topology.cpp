/// \file test_topology.cpp
/// \brief Alternative topologies (paper footnote 6): cascade tail/head and
/// controller synthesis, reduced to Figure-1 form and cross-checked against
/// the explicit oracle.

#include "eq/extract.hpp"
#include "eq/topology.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

/// o_t = i_{t-1}: one latch, output buffered from the state.
network make_delay1(const std::string& in = "a", const std::string& out = "z") {
    network net("delay1");
    net.add_input(in);
    net.add_latch(in, "s0", false);
    net.add_node(out, {"s0"}, {"1"});
    net.add_output(out);
    net.validate();
    return net;
}

/// o_t = i_{t-2}: two latches in series.
network make_delay2(const std::string& in = "a", const std::string& out = "z") {
    network net("delay2");
    net.add_input(in);
    net.add_latch(in, "s0", false);
    net.add_latch("s0", "s1", false);
    net.add_node(out, {"s1"}, {"1"});
    net.add_output(out);
    net.validate();
    return net;
}

/// front for the negative test: u is constantly 0 regardless of the input.
network make_blind_front() {
    network net("blind");
    net.add_input("a");
    net.add_node("u0", {"a"}, {}, false); // empty cover = constant 0
    net.add_output("u0");
    // one latch so the fixed part is sequential (exercises the cs_f path)
    net.add_latch("a", "junk", false);
    net.add_node("sink", {"junk"}, {"1"});
    (void)net;
    net.validate();
    return net;
}

/// plant for controller synthesis: state := control input, output = state.
network make_steerable_plant() {
    network net("plant");
    net.add_input("a");
    net.add_input("c");
    net.add_latch("c", "s", false);
    net.add_node("z", {"s"}, {"1"});
    net.add_output("z");
    net.validate();
    return net;
}

// ---------------------------------------------------------------------------
// cascade tail: delay1 . X <= delay2  =>  X is a 1-bit delay
// ---------------------------------------------------------------------------

TEST(topology, cascade_tail_delay_decomposition) {
    const network front = make_delay1("a", "d");
    const network spec = make_delay2();
    auto sol = solve_cascade_tail(front, spec);
    ASSERT_EQ(sol.result.status, solve_status::ok);
    ASSERT_FALSE(sol.result.empty_solution);

    // the transformed F has interface (i..., v...) -> (o..., u...)
    EXPECT_EQ(sol.fixed.num_inputs(), 2u);  // a + one v
    EXPECT_EQ(sol.fixed.num_outputs(), 2u); // z + one u
    EXPECT_EQ(sol.fixed.signal_name(sol.fixed.inputs()[0]), "a");
    EXPECT_EQ(sol.fixed.signal_name(sol.fixed.outputs()[0]), "z");

    // any implementation extracted from the CSF satisfies the composition
    const automaton fsm = extract_fsm(*sol.result.csf, sol.problem->u_vars,
                                      sol.problem->v_vars);
    EXPECT_TRUE(verify_composition_contained(*sol.problem, fsm));

    // cross-check the whole flow against the explicit oracle
    const solve_result oracle =
        solve_explicit(*sol.problem, sol.fixed, spec);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*sol.result.csf, *oracle.csf));
}

TEST(topology, cascade_tail_contains_the_delay_behaviour) {
    const network front = make_delay1("a", "d");
    const network spec = make_delay2();
    auto sol = solve_cascade_tail(front, spec);
    ASSERT_EQ(sol.result.status, solve_status::ok);
    const automaton& csf = *sol.result.csf;
    bdd_manager& mgr = sol.problem->mgr();
    const std::uint32_t u0 = sol.problem->u_vars[0];
    const std::uint32_t v0 = sol.problem->v_vars[0];

    // X_delay: state b, reads u, writes v=b, b' = u — as an automaton:
    // two states (b=0, b=1); from state b: label (v == b), dest = u value
    automaton xdelay(mgr, csf.label_vars());
    xdelay.add_state(true);
    xdelay.add_state(true);
    xdelay.set_initial(0);
    for (std::uint32_t b = 0; b < 2; ++b) {
        for (std::uint32_t u = 0; u < 2; ++u) {
            xdelay.add_transition(b, u,
                                  mgr.literal(v0, b != 0) &
                                      mgr.literal(u0, u != 0));
        }
    }
    EXPECT_TRUE(language_contained(xdelay, csf));
}

TEST(topology, cascade_tail_rejects_mismatched_front) {
    network front("bad");
    front.add_input("wrong_name");
    front.add_node("u0", {"wrong_name"}, {"1"});
    front.add_output("u0");
    EXPECT_THROW((void)to_figure1_cascade_tail(front, make_delay2()),
                 std::invalid_argument);
}

TEST(topology, cascade_tail_blind_front_has_no_solution) {
    auto sol = solve_cascade_tail(make_blind_front(), make_delay1());
    ASSERT_EQ(sol.result.status, solve_status::ok);
    EXPECT_TRUE(sol.result.empty_solution);
}

// ---------------------------------------------------------------------------
// cascade head: X . delay1 <= delay2  =>  X is a 1-bit delay
// ---------------------------------------------------------------------------

TEST(topology, cascade_head_delay_decomposition) {
    const network back = make_delay1("b", "z");
    const network spec = make_delay2();
    auto sol = solve_cascade_head(back, spec);
    ASSERT_EQ(sol.result.status, solve_status::ok);
    ASSERT_FALSE(sol.result.empty_solution);

    EXPECT_EQ(sol.fixed.num_inputs(), 2u);  // a + one v
    EXPECT_EQ(sol.fixed.num_outputs(), 2u); // z + one u
    EXPECT_EQ(sol.fixed.signal_name(sol.fixed.inputs()[0]), "a");
    EXPECT_EQ(sol.fixed.signal_name(sol.fixed.outputs()[0]), "z");

    const automaton fsm = extract_fsm(*sol.result.csf, sol.problem->u_vars,
                                      sol.problem->v_vars);
    EXPECT_TRUE(verify_composition_contained(*sol.problem, fsm));

    const solve_result oracle =
        solve_explicit(*sol.problem, sol.fixed, spec);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*sol.result.csf, *oracle.csf));
}

TEST(topology, cascade_head_rejects_output_mismatch) {
    const network back = make_delay1("b", "not_z");
    EXPECT_THROW((void)to_figure1_cascade_head(back, make_delay2()),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// controller: plant state := c, spec wants o_t = i_{t-1}  =>  c := i
// ---------------------------------------------------------------------------

TEST(topology, controller_synthesis_identity_control) {
    const network plant = make_steerable_plant();
    const network spec = make_delay1("a", "z");
    auto sol = solve_controller(plant, spec);
    ASSERT_EQ(sol.result.status, solve_status::ok);
    ASSERT_FALSE(sol.result.empty_solution);

    const automaton& csf = *sol.result.csf;
    bdd_manager& mgr = sol.problem->mgr();
    const std::uint32_t u0 = sol.problem->u_vars[0];
    const std::uint32_t v0 = sol.problem->v_vars[0];

    // the identity controller (v = u combinationally) must be a solution
    automaton identity(mgr, csf.label_vars());
    identity.add_state(true);
    identity.set_initial(0);
    identity.add_transition(0, 0, mgr.var(u0).iff(mgr.var(v0)));
    EXPECT_TRUE(language_contained(identity, csf));

    const automaton fsm = extract_fsm(csf, sol.problem->u_vars,
                                      sol.problem->v_vars);
    EXPECT_TRUE(verify_composition_contained(*sol.problem, fsm));

    const solve_result oracle =
        solve_explicit(*sol.problem, sol.fixed, spec);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(csf, *oracle.csf));
}

TEST(topology, controller_rejects_wrong_interfaces) {
    // plant with no control inputs at all still type-checks (num_c = 0) but
    // mismatched output names must throw
    network plant("p");
    plant.add_input("a");
    plant.add_latch("a", "s", false);
    plant.add_node("wrong", {"s"}, {"1"});
    plant.add_output("wrong");
    EXPECT_THROW((void)to_figure1_controller(plant, make_delay1("a", "z")),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// transforms preserve simulation semantics
// ---------------------------------------------------------------------------

TEST(topology, cascade_tail_transform_simulates_correctly) {
    const network front = make_delay1("a", "d");
    const network spec = make_delay2();
    const network fixed = to_figure1_cascade_tail(front, spec);
    // drive (a, v): o must equal v (buffer) and u must equal a delayed
    std::vector<bool> state(fixed.num_latches(), false);
    std::vector<bool> front_state(front.num_latches(), false);
    std::uint32_t lcg = 12345;
    for (int t = 0; t < 32; ++t) {
        lcg = lcg * 1664525u + 1013904223u;
        const bool a = (lcg >> 16) & 1u;
        const bool v = (lcg >> 17) & 1u;
        const auto r = fixed.simulate(state, {a, v});
        const auto fr = front.simulate(front_state, {a});
        ASSERT_EQ(r.outputs.size(), 2u);
        EXPECT_EQ(r.outputs[0], v) << "o must buffer v at t=" << t;
        EXPECT_EQ(r.outputs[1], fr.outputs[0]) << "u must follow front";
        state = r.next_state;
        front_state = fr.next_state;
    }
}

TEST(topology, controller_transform_simulates_correctly) {
    const network plant = make_steerable_plant();
    const network spec = make_delay1("a", "z");
    const network fixed = to_figure1_controller(plant, spec);
    std::vector<bool> state(fixed.num_latches(), false);
    std::vector<bool> plant_state(plant.num_latches(), false);
    std::uint32_t lcg = 99;
    for (int t = 0; t < 32; ++t) {
        lcg = lcg * 1664525u + 1013904223u;
        const bool a = (lcg >> 16) & 1u;
        const bool v = (lcg >> 18) & 1u;
        const auto r = fixed.simulate(state, {a, v});
        const auto pr = plant.simulate(plant_state, {a, v});
        ASSERT_EQ(r.outputs.size(), 2u);
        EXPECT_EQ(r.outputs[0], pr.outputs[0]) << "o must follow plant";
        EXPECT_EQ(r.outputs[1], a) << "u must expose the external input";
        state = r.next_state;
        plant_state = pr.next_state;
    }
}

} // namespace
