/// \file test_checked.cpp
/// \brief LEQ_CHECKED provenance instrumentation: cross-manager handle use
/// and off-thread bdd_manager calls must abort with the documented
/// diagnostic, and legal single-threaded use must be unaffected.
///
/// The suite is compiled into every build but only bites in checked builds
/// (-DLEQ_CHECKED=ON, as the CI tsan and asan+ubsan jobs configure): the
/// guards compile to nothing otherwise — the statements under EXPECT_DEATH
/// would run to completion instead of dying — so the suite skips.

#include "bdd/bdd.hpp"
#include "bdd/transfer.hpp"

#include <gtest/gtest.h>

#ifdef LEQ_CHECKED

#include <cstring>
#include <thread>
#include <vector>

namespace {

using leq::bdd;
using leq::bdd_manager;
using leq::bdd_transfer;

// death tests fork the process; "threadsafe" re-executes the binary so the
// child is in a well-defined single-threaded state before we spawn threads
class checked_death : public ::testing::Test {
protected:
    void SetUp() override {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

TEST(checked_build, legal_single_threaded_use_is_unaffected) {
    bdd_manager mgr(4);
    const bdd f = (mgr.var(0) & mgr.var(1)) | !mgr.var(2);
    const bdd g = mgr.exists(f, mgr.cube({0}));
    EXPECT_TRUE(f.valid());
    EXPECT_TRUE(g.valid());
    mgr.check_consistency();
    EXPECT_GE(mgr.checked_serial(), 1u);
}

TEST(checked_build, serials_are_distinct_and_increasing) {
    bdd_manager a(1);
    bdd_manager b(1);
    EXPECT_LT(a.checked_serial(), b.checked_serial());
}

TEST_F(checked_death, cross_manager_handle_aborts_with_diagnostic) {
    bdd_manager mine(4);
    bdd_manager other(4);
    const bdd f = mine.var(0);
    const bdd foreign = other.var(0);
    EXPECT_DEATH((void)mine.apply_and(f, foreign),
                 "cross-manager bdd handle.*apply_and");
}

TEST_F(checked_death, cross_manager_cube_in_exists_aborts) {
    bdd_manager mine(4);
    bdd_manager other(4);
    const bdd f = mine.var(1);
    const bdd foreign_cube = other.cube({1});
    EXPECT_DEATH((void)mine.exists(f, foreign_cube),
                 "cross-manager bdd handle.*exists");
}

TEST_F(checked_death, cross_manager_nary_operand_aborts) {
    bdd_manager mine(4);
    bdd_manager other(4);
    const std::vector<bdd> operands = {mine.var(0), other.var(1)};
    EXPECT_DEATH((void)mine.and_exists(operands, mine.cube({0})),
                 "cross-manager bdd handle.*and_exists");
}

TEST_F(checked_death, off_thread_operation_aborts_with_diagnostic) {
    EXPECT_DEATH(
        {
            bdd_manager mgr(4);
            // the manager belongs to the constructing thread; any public
            // operation from another thread must abort
            std::thread intruder([&mgr] { (void)mgr.var(0); });
            intruder.join();
        },
        "off-thread bdd_manager call.*var");
}

TEST_F(checked_death, off_thread_handle_release_aborts) {
    EXPECT_DEATH(
        {
            bdd_manager mgr(4);
            bdd f = mgr.var(0);
            // destroying a handle mutates the manager's external reference
            // counts, so it counts as a manager call too
            std::thread intruder([g = std::move(f)]() mutable {});
            intruder.join();
        },
        "off-thread bdd_manager call.*release");
}

TEST_F(checked_death, handle_release_underflow_aborts_with_diagnostic) {
    EXPECT_DEATH(
        {
            bdd_manager mgr(4);
            {
                bdd f = mgr.var(0) & mgr.var(1);
                // a bitwise duplicate bypasses bdd's reference counting:
                // destroying it releases f's one external reference, and
                // f's own destructor then underflows the count
                alignas(bdd) unsigned char raw[sizeof(bdd)];
                std::memcpy(raw, static_cast<const void*>(&f), sizeof(bdd));
                reinterpret_cast<bdd*>(raw)->~bdd();
            }
        },
        "release underflow.*released twice");
}

TEST_F(checked_death, transferred_handle_is_legal_raw_reuse_still_aborts) {
    // bdd_transfer is the one sanctioned way a function crosses managers:
    // the copy must satisfy every provenance guard, while handing the raw
    // source handle to the destination still dies exactly as before
    bdd_manager src(4);
    bdd_manager dst(4);
    const bdd f = (src.var(0) & src.var(1)) | !src.var(2);
    const bdd copy = bdd_transfer(src, f, dst);
    EXPECT_TRUE((copy & dst.var(3)).valid());
    dst.check_consistency();
    EXPECT_DEATH((void)dst.apply_and(f, dst.var(3)),
                 "cross-manager bdd handle.*apply_and");
}

TEST(checked_build, transfer_round_trip_preserves_truth_table) {
    // complemented root, complemented internal edges, shared subgraph (g
    // appears under both branches of h): the checked walk must accept the
    // copy, the round trip must restore the exact handle, and every
    // assignment must evaluate identically in both managers
    bdd_manager src(4);
    bdd_manager dst(4);
    const bdd g = src.var(2) ^ src.var(3);
    const bdd h = src.ite(src.var(0), g & src.var(1), !g);
    const bdd f = !h;
    const bdd copy = bdd_transfer(src, f, dst);
    dst.check_consistency();
    const bdd back = bdd_transfer(dst, copy, src);
    EXPECT_EQ(back, f);
    for (unsigned m = 0; m < 16; ++m) {
        std::vector<bool> a(4);
        for (unsigned b = 0; b < 4; ++b) { a[b] = ((m >> b) & 1) != 0; }
        EXPECT_EQ(dst.eval(copy, a), src.eval(f, a)) << "assignment " << m;
    }
}

TEST(checked_build, one_manager_per_thread_is_legal) {
    // the batch-pool discipline: construct, use and destroy a manager
    // entirely on one worker thread — must not trip any guard
    std::thread worker([] {
        bdd_manager mgr(6);
        const bdd f = mgr.var(0) ^ mgr.var(5);
        EXPECT_EQ(mgr.support(f).size(), 2u);
    });
    worker.join();
}

} // namespace

#else // !LEQ_CHECKED

TEST(checked_build, requires_leq_checked) {
    GTEST_SKIP() << "configure with -DLEQ_CHECKED=ON to arm the provenance "
                    "guards (CI runs them in the tsan and asan+ubsan jobs)";
}

#endif
