/// \file test_reach_strategies.cpp
/// \brief The four reachability strategies (bfs / frontier / chaining /
/// saturation) must be pure scheduling choices: on any machine, under any
/// early-quantification x clustering combination, they reach the identical
/// state set with the identical sat count — and all but saturation (whose
/// worklist deliberately abandons layer order) the identical BFS layering.
/// Cross-checked on randomly generated networks (plus structured families)
/// and on the language-equation solvers, whose subset construction plumbs
/// the same strategy option.

#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "gen/scenario.hpp"
#include "img/image.hpp"
#include "img/parallel.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <vector>

namespace {

using namespace leq;

struct circuit_vars {
    std::vector<std::uint32_t> in, cs, ns;
};

std::pair<net_bdds, circuit_vars> setup(bdd_manager& mgr, const network& net) {
    circuit_vars vars;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        vars.in.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        vars.cs.push_back(mgr.new_var());
        vars.ns.push_back(mgr.new_var());
    }
    net_bdds fns = build_net_bdds(mgr, net, vars.in, vars.cs);
    return {std::move(fns), std::move(vars)};
}

/// Explicit BFS oracle (state count only; small machines).
std::size_t explicit_reachable_count(const network& net) {
    std::set<std::vector<bool>> seen;
    std::queue<std::vector<bool>> work;
    work.push(net.initial_state());
    seen.insert(net.initial_state());
    const std::size_t ni = net.num_inputs();
    while (!work.empty()) {
        const std::vector<bool> s = work.front();
        work.pop();
        for (std::size_t m = 0; m < (1u << ni); ++m) {
            std::vector<bool> in(ni);
            for (std::size_t b = 0; b < ni; ++b) {
                in[b] = ((m >> b) & 1) != 0;
            }
            const auto r = net.simulate(s, in);
            if (seen.insert(r.next_state).second) { work.push(r.next_state); }
        }
    }
    return seen.size();
}

/// 24 machines: the deliberately deep/wide stress shapes this suite exists
/// for (strategies diverge most past ~5 sequential levels / 6 parallel
/// latches), then the shared menu's named families and random tail.
network machine_for(int id) {
    switch (id) {
    case 1: return make_counter(6);    // deep-sequential
    case 2: return make_lfsr(6, {1, 4});
    case 3: return make_shift_xor(7);  // wide-parallel
    default: return make_menu_circuit(id);
    }
}

/// The full option matrix the engine supports: every strategy x
/// early-quantification on/off x clustering off/default.
std::vector<image_options> option_matrix() {
    std::vector<image_options> matrix;
    for (const reach_strategy strategy : all_reach_strategies) {
        for (const bool early : {true, false}) {
            for (const std::size_t cluster : {std::size_t{0},
                                              std::size_t{2500}}) {
                image_options o;
                o.strategy = strategy;
                o.early_quantification = early;
                o.cluster_limit = cluster;
                matrix.push_back(o);
            }
        }
    }
    return matrix;
}

class reach_strategies : public ::testing::TestWithParam<int> {};

TEST_P(reach_strategies, identical_reached_set_across_option_matrix) {
    const network net = machine_for(GetParam());
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const auto nbits = static_cast<std::uint32_t>(vars.cs.size());

    const bdd reference = reachable_states(mgr, fns.next_state, vars.cs,
                                           vars.ns, vars.in, init);
    const double ref_count = mgr.sat_count(reference, nbits);
    for (const image_options& options : option_matrix()) {
        const bdd reached = reachable_states(mgr, fns.next_state, vars.cs,
                                             vars.ns, vars.in, init, options);
        EXPECT_EQ(reached, reference)
            << "machine " << GetParam() << " strategy "
            << to_string(options.strategy) << " early "
            << options.early_quantification << " cluster "
            << options.cluster_limit;
        EXPECT_DOUBLE_EQ(mgr.sat_count(reached, nbits), ref_count);
    }
}

TEST_P(reach_strategies, identical_layering_and_depth) {
    const network net = machine_for(GetParam());
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());

    // bfs/frontier/chaining add exactly the BFS layer Img(R_k) \ R_k per
    // step, so depth and per-layer counts agree, not just the fixpoint
    // (saturation reports a fires trace instead; see its own suite below)
    image_options options;
    options.strategy = reach_strategy::frontier;
    const reach_info reference = reachable_states_layered(
        mgr, fns.next_state, vars.cs, vars.ns, vars.in, init, options);
    for (const reach_strategy strategy :
         {reach_strategy::bfs, reach_strategy::chaining}) {
        options.strategy = strategy;
        const reach_info info = reachable_states_layered(
            mgr, fns.next_state, vars.cs, vars.ns, vars.in, init, options);
        EXPECT_EQ(info.reached, reference.reached);
        EXPECT_EQ(info.depth, reference.depth) << to_string(strategy);
        EXPECT_EQ(info.layer_states, reference.layer_states)
            << to_string(strategy);
        EXPECT_DOUBLE_EQ(info.total_states, reference.total_states);
    }
}

INSTANTIATE_TEST_SUITE_P(random_machines, reach_strategies,
                         ::testing::Range(0, 24));

TEST(reach_strategies_oracle, sat_count_matches_explicit_bfs) {
    for (int id = 0; id < 8; ++id) {
        const network net = machine_for(id);
        if (net.num_inputs() > 4 || net.num_latches() > 10) { continue; }
        bdd_manager mgr;
        auto [fns, vars] = setup(mgr, net);
        const bdd init = state_cube(mgr, vars.cs, net.initial_state());
        const auto oracle =
            static_cast<double>(explicit_reachable_count(net));
        for (const reach_strategy strategy : all_reach_strategies) {
            image_options options;
            options.strategy = strategy;
            const bdd reached = reachable_states(
                mgr, fns.next_state, vars.cs, vars.ns, vars.in, init, options);
            EXPECT_DOUBLE_EQ(
                mgr.sat_count(reached,
                              static_cast<std::uint32_t>(vars.cs.size())),
                oracle)
                << "machine " << id << " strategy " << to_string(strategy);
        }
    }
}

TEST(reach_strategies_saturation, pinned_state_count_identity_vs_bfs) {
    // the locality-chunked worklist must close over exactly the states the
    // textbook bfs fixpoint reaches — pinned per machine on the deep shapes
    // saturation targets, via an explicitly built relation so the fires
    // counter is observable alongside the trace
    for (const int id : {1, 2, 3}) {
        const network net = machine_for(id);
        bdd_manager mgr;
        auto [fns, vars] = setup(mgr, net);
        const bdd init = state_cube(mgr, vars.cs, net.initial_state());
        const auto nbits = static_cast<std::uint32_t>(vars.cs.size());

        image_options options;
        options.strategy = reach_strategy::bfs;
        const reach_info bfs = reachable_states_layered(
            mgr, fns.next_state, vars.cs, vars.ns, vars.in, init, options);

        options.strategy = reach_strategy::saturation;
        transition_relation relation = transition_relation::next_state(
            mgr, fns.next_state, vars.cs, vars.ns, vars.in, options);
        relation.rename_image_to_current();
        const reach_info sat =
            reachable_states_layered(relation, init, nbits);

        EXPECT_EQ(sat.reached, bfs.reached) << "machine " << id;
        EXPECT_DOUBLE_EQ(sat.total_states, bfs.total_states);
        EXPECT_DOUBLE_EQ(mgr.sat_count(sat.reached, nbits),
                         bfs.total_states);
        // the saturation trace: depth counts fires, one layer entry per
        // fire plus the init entry, and the fires land in the relation stats
        EXPECT_EQ(sat.depth, relation.stats().saturation_fires)
            << "machine " << id;
        EXPECT_EQ(sat.layer_states.size(), sat.depth + 1);
        EXPECT_GT(relation.stats().saturation_fires, 0u);
        double discovered = 0.0;
        for (const double states : sat.layer_states) { discovered += states; }
        // chunks are disjoint from the reached set, so every state is
        // discovered exactly once across the trace
        EXPECT_DOUBLE_EQ(discovered, bfs.total_states) << "machine " << id;
    }
}

TEST(reach_strategies_parallel, jobs_matrix_identity_per_strategy) {
    // the PR-10 widening of the identity matrix: every strategy crossed
    // with --solve-jobs {1,2,4} must reproduce the sequential engine's
    // reached set handle-for-handle, and the deterministic parallel
    // counters must agree across worker counts (they may differ across
    // strategies — bfs images bigger operands than frontier)
    for (const int id : {2, 3, 6}) {
        const network net = machine_for(id);
        bdd_manager mgr;
        auto [fns, vars] = setup(mgr, net);
        const bdd init = state_cube(mgr, vars.cs, net.initial_state());
        const auto nbits = static_cast<std::uint32_t>(vars.cs.size());
        for (const reach_strategy strategy : all_reach_strategies) {
            image_options options;
            options.strategy = strategy;
            const bdd reference = reachable_states(
                mgr, fns.next_state, vars.cs, vars.ns, vars.in, init, options);
            std::size_t ref_chunks = 0, ref_transfer = 0;
            bool have_ref = false;
            for (const std::size_t jobs : {1u, 2u, 4u}) {
                options.solve_jobs = jobs;
                image_pool pool(jobs);
                options.executor = &pool;
                transition_relation relation =
                    transition_relation::next_state(mgr, fns.next_state,
                                                    vars.cs, vars.ns,
                                                    vars.in, options);
                relation.rename_image_to_current();
                const reach_info info =
                    reachable_states_layered(relation, init, nbits);
                EXPECT_EQ(info.reached, reference)
                    << "machine " << id << " strategy "
                    << to_string(strategy) << " jobs " << jobs;
                const relation_stats& s = relation.stats();
                if (!have_ref) {
                    ref_chunks = s.parallel_chunks;
                    ref_transfer = s.transfer_nodes;
                    have_ref = true;
                } else {
                    EXPECT_EQ(s.parallel_chunks, ref_chunks)
                        << to_string(strategy) << " jobs " << jobs;
                    EXPECT_EQ(s.transfer_nodes, ref_transfer)
                        << to_string(strategy) << " jobs " << jobs;
                }
                options.executor = nullptr;
            }
        }
    }
}

TEST(reach_strategies_parallel, solver_stats_identity_across_jobs) {
    // both solver flows plumb solve_jobs into their relations; the CSF,
    // the subset trajectory, and every deterministic stats counter must
    // agree with the sequential solve for each worker count
    const network original = make_shift_xor(3);
    const split_result split = split_latches(original, {1, 2});
    const equation_problem problem(split.fixed, original);

    const solve_result seq_part = solve_partitioned(problem, {});
    const solve_result seq_mono = solve_monolithic(problem, {});
    ASSERT_EQ(seq_part.status, solve_status::ok);
    ASSERT_EQ(seq_mono.status, solve_status::ok);
    for (const std::size_t jobs : {1u, 2u, 4u}) {
        solve_options options;
        options.img.solve_jobs = jobs;
        for (const bool monolithic : {false, true}) {
            const solve_result& reference = monolithic ? seq_mono : seq_part;
            const solve_result r = monolithic
                                       ? solve_monolithic(problem, options)
                                       : solve_partitioned(problem, options);
            ASSERT_EQ(r.status, solve_status::ok) << "jobs " << jobs;
            EXPECT_EQ(r.subset_states_explored,
                      reference.subset_states_explored)
                << "jobs " << jobs << " mono " << monolithic;
            EXPECT_EQ(r.csf_states, reference.csf_states);
            EXPECT_TRUE(language_equivalent(*r.csf, *reference.csf));
            EXPECT_EQ(r.stats.images, reference.stats.images)
                << "jobs " << jobs << " mono " << monolithic;
        }
        // the parallel counters themselves: identical across every N
        const solve_result a = solve_partitioned(problem, options);
        solve_options other;
        other.img.solve_jobs = jobs == 1 ? 4 : 1;
        const solve_result b = solve_partitioned(problem, other);
        EXPECT_EQ(a.stats.parallel_chunks, b.stats.parallel_chunks);
        EXPECT_EQ(a.stats.transfer_nodes, b.stats.transfer_nodes);
    }
}

TEST(reach_strategies_solver, csf_invariant_under_strategy) {
    // the subset construction plumbs the strategy into its image engines and
    // worklist discipline; the CSF language must not depend on it
    const std::vector<std::pair<network, std::vector<std::size_t>>> instances =
        {{make_paper_example(), {1}},
         {make_counter(3), {0, 1}},
         {make_shift_xor(3), {1, 2}}};
    for (const auto& [original, x_latches] : instances) {
        const split_result split = split_latches(original, x_latches);
        const equation_problem problem(split.fixed, original);

        solve_options base;
        base.img.strategy = reach_strategy::frontier;
        const solve_result reference = solve_partitioned(problem, base);
        ASSERT_EQ(reference.status, solve_status::ok);
        for (const reach_strategy strategy :
             {reach_strategy::bfs, reach_strategy::chaining,
              reach_strategy::saturation}) {
            solve_options options;
            options.img.strategy = strategy;
            const solve_result part = solve_partitioned(problem, options);
            const solve_result mono = solve_monolithic(problem, options);
            ASSERT_EQ(part.status, solve_status::ok);
            ASSERT_EQ(mono.status, solve_status::ok);
            EXPECT_EQ(part.subset_states_explored,
                      reference.subset_states_explored)
                << to_string(strategy);
            EXPECT_EQ(part.csf_states, reference.csf_states);
            EXPECT_TRUE(language_equivalent(*part.csf, *reference.csf))
                << original.name() << " " << to_string(strategy);
            EXPECT_TRUE(language_equivalent(*mono.csf, *reference.csf))
                << original.name() << " " << to_string(strategy);
        }
    }
}

} // namespace
