/// \file test_automata_random.cpp
/// \brief Random-NFA property sweeps over the automata algebra: identities
/// that must hold for arbitrary (including non-deterministic, incomplete)
/// automata, checked on seeded random instances.

#include "automata/automaton.hpp"
#include "gen/scenario.hpp" // test_seed

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace leq;

constexpr std::uint32_t label_bits = 2;

/// Random NFA: 4..7 states, random BDD-labelled edges, random acceptance.
/// The initial state is always accepting half the time so empty-word cases
/// are exercised.
automaton random_nfa(bdd_manager& mgr, std::uint32_t seed) {
    std::mt19937 rng(seed);
    const std::uint32_t n = 4 + rng() % 4;
    automaton a(mgr, {0, 1});
    for (std::uint32_t s = 0; s < n; ++s) { a.add_state((rng() & 1u) != 0); }
    a.set_initial(0);
    const std::uint32_t edges = n + rng() % (2 * n);
    for (std::uint32_t e = 0; e < edges; ++e) {
        const std::uint32_t src = rng() % n;
        const std::uint32_t dst = rng() % n;
        // random nonempty label: a cube or a disjunction of two cubes
        bdd label = mgr.one();
        for (std::uint32_t v = 0; v < label_bits; ++v) {
            switch (rng() % 3) {
                case 0: label &= mgr.var(v); break;
                case 1: label &= mgr.nvar(v); break;
                default: break; // don't care
            }
        }
        if ((rng() & 3u) == 0) {
            bdd second = mgr.one();
            for (std::uint32_t v = 0; v < label_bits; ++v) {
                if (rng() & 1u) {
                    second &= mgr.literal(v, (rng() & 1u) != 0);
                }
            }
            label |= second;
        }
        a.add_transition(src, dst, label);
    }
    return a;
}

class nfa_props : public ::testing::TestWithParam<std::uint32_t> {
protected:
    // LEQ_TEST_SEED replays a CI failure: it overrides every param's seed
    std::uint32_t seed = test_seed(GetParam());
    bdd_manager mgr{label_bits};
    automaton a = random_nfa(mgr, seed);
    automaton b = random_nfa(mgr, seed + 500);
};

TEST_P(nfa_props, determinization_preserves_language) {
    const automaton d = determinize(a);
    EXPECT_TRUE(is_deterministic(d));
    EXPECT_TRUE(language_equivalent(a, d));
}

TEST_P(nfa_props, double_complement_is_identity) {
    const automaton c1 = complement(complete(determinize(a)));
    const automaton c2 = complement(complete(determinize(c1)));
    EXPECT_TRUE(language_equivalent(a, c2));
    // complement really flips membership on sampled words (both sides)
    for (const word& w : sample_accepted_words(a, 6, 5, seed)) {
        EXPECT_FALSE(accepts(c1, w));
    }
}

TEST_P(nfa_props, product_is_intersection) {
    const automaton p = product(a, b);
    EXPECT_TRUE(language_contained(p, a));
    EXPECT_TRUE(language_contained(p, b));
    // any word in both languages is in the product
    for (const word& w : sample_accepted_words(a, 8, 4, seed + 7)) {
        EXPECT_EQ(accepts(p, w), accepts(b, w));
    }
    // commutativity at the language level
    EXPECT_TRUE(language_equivalent(p, product(b, a)));
}

TEST_P(nfa_props, union_difference_partition) {
    // L(a) = (L(a) \ L(b)) union (L(a) intersect L(b)), disjointly
    const automaton only_a = difference(a, b);
    const automaton both = product(a, b);
    EXPECT_TRUE(language_equivalent(union_automata(only_a, both), a));
    EXPECT_TRUE(language_empty(product(only_a, both)));
}

TEST_P(nfa_props, prefix_close_is_idempotent_and_shrinking) {
    const automaton p1 = prefix_close(a);
    EXPECT_TRUE(language_contained(p1, a));
    EXPECT_TRUE(language_equivalent(prefix_close(p1), p1));
    EXPECT_TRUE(is_prefix_closed(p1));
}

TEST_P(nfa_props, minimize_preserves_and_fixes_size) {
    const automaton d = trim_unreachable(determinize(a));
    const automaton m1 = minimize(d);
    EXPECT_TRUE(language_equivalent(d, m1));
    const automaton m2 = minimize(m1);
    EXPECT_EQ(m1.num_states(), m2.num_states());
    EXPECT_LE(m1.num_states(), d.num_states());
}

TEST_P(nfa_props, count_words_is_representation_independent) {
    const automaton d = determinize(a);
    const automaton m = minimize(trim_unreachable(d));
    for (const std::size_t len : {0u, 1u, 2u, 3u, 4u}) {
        EXPECT_EQ(count_words(a, len), count_words(d, len)) << len;
        EXPECT_EQ(count_words(a, len), count_words(m, len)) << len;
    }
}

TEST_P(nfa_props, counterexample_agrees_with_containment) {
    const bool contained = language_contained(a, b);
    const auto witness = containment_counterexample(a, b);
    EXPECT_EQ(contained, !witness.has_value());
    if (witness.has_value()) {
        EXPECT_TRUE(accepts(a, *witness));
        EXPECT_FALSE(accepts(b, *witness));
    }
}

TEST_P(nfa_props, shortest_word_is_shortest) {
    const auto w = shortest_accepted_word(a);
    if (!w.has_value()) {
        EXPECT_TRUE(language_empty(a));
        return;
    }
    EXPECT_TRUE(accepts(a, *w));
    // no sampled accepted word is shorter
    for (const word& other : sample_accepted_words(a, 12, 6, seed)) {
        EXPECT_GE(other.size(), w->size());
    }
}

TEST_P(nfa_props, change_support_expansion_round_trip) {
    // expanding with a fresh unconstrained variable and hiding it again
    // must preserve the language
    bdd_manager wide(label_bits + 1);
    const automaton base = random_nfa(wide, seed);
    const automaton expanded = change_support(base, {0, 1, 2});
    const automaton back = change_support(expanded, {0, 1});
    EXPECT_TRUE(language_equivalent(base, back));
}

INSTANTIATE_TEST_SUITE_P(seeds, nfa_props, ::testing::Range(1u, 16u));

} // namespace
