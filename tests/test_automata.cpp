/// \file test_automata.cpp
/// \brief Tests for explicit automata: elementary operations, language
/// queries, STG extraction, and the paper's Theorem 1 (completion and
/// determinization commute).

#include "automata/automaton.hpp"
#include "automata/stg.hpp"
#include "net/generator.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace leq;

/// Two-variable alphabet used by most tests here.
struct fixture {
    bdd_manager mgr{8};
    std::vector<std::uint32_t> vars{0, 1};
    bdd a0() { return mgr.nvar(0); }
    bdd a1() { return mgr.var(0); }
};

/// a* then b: accepts words (0.)* (1.) over var0 (var1 free).
automaton make_simple(fixture& f) {
    automaton aut(f.mgr, f.vars);
    const auto s0 = aut.add_state(true);
    const auto s1 = aut.add_state(true);
    aut.set_initial(s0);
    aut.add_transition(s0, s0, f.a0());
    aut.add_transition(s0, s1, f.a1());
    return aut;
}

TEST(automaton_basic, add_and_query) {
    fixture f;
    const automaton aut = make_simple(f);
    EXPECT_EQ(aut.num_states(), 2u);
    EXPECT_EQ(aut.num_transitions(), 2u);
    EXPECT_TRUE(aut.accepting(0));
    EXPECT_TRUE(aut.domain(0).is_one());
    EXPECT_TRUE(aut.domain(1).is_zero());
}

TEST(automaton_basic, add_transition_merges_parallel_edges) {
    fixture f;
    automaton aut(f.mgr, f.vars);
    const auto s = aut.add_state(true);
    aut.add_transition(s, s, f.a0());
    aut.add_transition(s, s, f.a1());
    EXPECT_EQ(aut.transitions(s).size(), 1u);
    EXPECT_TRUE(aut.transitions(s)[0].label.is_one());
    // zero labels are dropped entirely
    aut.add_transition(s, s, f.mgr.zero());
    EXPECT_EQ(aut.num_transitions(), 1u);
}

TEST(automaton_ops, complete_adds_dc_sink) {
    fixture f;
    const automaton aut = make_simple(f);
    EXPECT_FALSE(is_complete(aut));
    const automaton c = complete(aut);
    EXPECT_TRUE(is_complete(c));
    EXPECT_EQ(c.num_states(), 3u);
    EXPECT_FALSE(c.accepting(2));          // DC is non-accepting
    EXPECT_EQ(c.transitions(2).size(), 1u); // universal self-loop
    EXPECT_TRUE(c.transitions(2)[0].label.is_one());
    // completing a complete automaton is the identity
    const automaton cc = complete(c);
    EXPECT_EQ(cc.num_states(), c.num_states());
}

TEST(automaton_ops, complement_swaps_acceptance) {
    fixture f;
    const automaton aut = complete(make_simple(f));
    const automaton comp = complement(aut);
    for (std::uint32_t s = 0; s < aut.num_states(); ++s) {
        EXPECT_NE(aut.accepting(s), comp.accepting(s));
    }
    // double complement = original language
    EXPECT_TRUE(language_equivalent(complement(comp), aut));
}

TEST(automaton_ops, complement_requires_deterministic_complete) {
    fixture f;
    const automaton incomplete = make_simple(f);
    EXPECT_THROW(complement(incomplete), std::logic_error);
    automaton nondet(f.mgr, f.vars);
    const auto s0 = nondet.add_state(true);
    const auto s1 = nondet.add_state(false);
    nondet.set_initial(s0);
    nondet.add_transition(s0, s0, f.mgr.one());
    nondet.add_transition(s0, s1, f.a1());
    EXPECT_THROW(complement(nondet), std::logic_error);
}

TEST(automaton_ops, determinize_merges_overlapping_moves) {
    fixture f;
    automaton nondet(f.mgr, f.vars);
    const auto s0 = nondet.add_state(true);
    const auto s1 = nondet.add_state(true);
    const auto s2 = nondet.add_state(false);
    nondet.set_initial(s0);
    nondet.add_transition(s0, s1, f.a1());        // on var0
    nondet.add_transition(s0, s2, f.mgr.var(1));  // on var1 (overlaps)
    EXPECT_FALSE(is_deterministic(nondet));
    const automaton det = determinize(nondet);
    EXPECT_TRUE(is_deterministic(det));
    EXPECT_TRUE(language_equivalent(nondet, det));
}

TEST(automaton_ops, product_intersects_languages) {
    fixture f;
    // A: var0 must be 1 forever; B: var1 must be 1 forever
    automaton a(f.mgr, {0}), b(f.mgr, {1});
    a.set_initial(a.add_state(true));
    a.add_transition(0, 0, f.mgr.var(0));
    b.set_initial(b.add_state(true));
    b.add_transition(0, 0, f.mgr.var(1));
    const automaton p = product(a, b);
    EXPECT_EQ(p.label_vars(), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(p.num_states(), 1u);
    EXPECT_EQ(p.transitions(0)[0].label, f.mgr.var(0) & f.mgr.var(1));
}

TEST(automaton_ops, change_support_hides_and_expands) {
    fixture f;
    const automaton aut = make_simple(f);
    // hide var0: every label becomes TRUE (var1 unconstrained)
    const automaton hidden = change_support(aut, {1});
    EXPECT_EQ(hidden.label_vars(), (std::vector<std::uint32_t>{1}));
    EXPECT_FALSE(is_deterministic(hidden)); // hiding created nondeterminism
    // expand with a fresh variable: same structure
    const automaton expanded = change_support(aut, {0, 1, 5});
    EXPECT_EQ(expanded.num_transitions(), aut.num_transitions());
}

TEST(automaton_ops, prefix_close_removes_nonaccepting) {
    fixture f;
    automaton aut(f.mgr, f.vars);
    const auto s0 = aut.add_state(true);
    const auto bad = aut.add_state(false);
    const auto s2 = aut.add_state(true);
    aut.set_initial(s0);
    aut.add_transition(s0, bad, f.a0());
    aut.add_transition(s0, s2, f.a1());
    aut.add_transition(bad, s2, f.mgr.one());
    const automaton pc = prefix_close(aut);
    EXPECT_EQ(pc.num_states(), 2u);
    for (std::uint32_t s = 0; s < pc.num_states(); ++s) {
        EXPECT_TRUE(pc.accepting(s));
    }
}

TEST(automaton_ops, prefix_close_of_rejecting_initial_is_empty) {
    fixture f;
    automaton aut(f.mgr, f.vars);
    const auto s0 = aut.add_state(false);
    aut.set_initial(s0);
    aut.add_transition(s0, s0, f.mgr.one());
    EXPECT_TRUE(language_empty(prefix_close(aut)));
}

TEST(automaton_ops, progressive_trims_input_incomplete_states) {
    fixture f;
    // inputs = {var0}; outputs = {var1}
    automaton aut(f.mgr, f.vars);
    const auto s0 = aut.add_state(true);
    const auto s1 = aut.add_state(true); // s1 only moves on var0 = 1: not
    aut.set_initial(s0);                 // input-progressive
    aut.add_transition(s0, s0, f.a0());
    aut.add_transition(s0, s1, f.a1());
    aut.add_transition(s1, s1, f.a1());
    const automaton prog = progressive(aut, {0});
    // s1 dies; then s0 loses its var0=1 move but var0=0 keeps... s0 also
    // dies because input var0=1 leads nowhere
    EXPECT_TRUE(language_empty(prog));
}

TEST(automaton_ops, progressive_keeps_input_complete_core) {
    fixture f;
    automaton aut(f.mgr, f.vars);
    const auto s0 = aut.add_state(true);
    const auto s1 = aut.add_state(true);
    aut.set_initial(s0);
    aut.add_transition(s0, s0, f.mgr.one()); // all inputs fine at s0
    aut.add_transition(s0, s1, f.a1() & f.mgr.var(1));
    aut.add_transition(s1, s1, f.a1()); // s1 not progressive (var0=0 missing)
    const automaton prog = progressive(aut, {0});
    EXPECT_FALSE(language_empty(prog));
    EXPECT_EQ(prog.num_states(), 1u); // only s0 survives
}

TEST(automaton_lang, containment_and_equivalence) {
    fixture f;
    // L1: all words; L2: words where var0 is always 1
    automaton all(f.mgr, f.vars), ones(f.mgr, f.vars);
    all.set_initial(all.add_state(true));
    all.add_transition(0, 0, f.mgr.one());
    ones.set_initial(ones.add_state(true));
    ones.add_transition(0, 0, f.a1());
    EXPECT_TRUE(language_contained(ones, all));
    EXPECT_FALSE(language_contained(all, ones));
    EXPECT_TRUE(language_equivalent(all, all));
    EXPECT_FALSE(language_equivalent(all, ones));
}

TEST(automaton_lang, empty_language_detection) {
    fixture f;
    automaton aut(f.mgr, f.vars);
    const auto s0 = aut.add_state(false);
    const auto s1 = aut.add_state(true); // unreachable accepting state
    aut.set_initial(s0);
    aut.add_transition(s1, s0, f.mgr.one());
    EXPECT_TRUE(language_empty(aut));
}

// ---------------------------------------------------------------------------
// Theorem 1 (paper appendix): Complete(Determinize(A)) has the same language
// as Determinize(Complete(A)) — checked over random nondeterministic automata
// ---------------------------------------------------------------------------

automaton random_automaton(bdd_manager& mgr,
                           const std::vector<std::uint32_t>& vars,
                           std::uint32_t seed) {
    std::mt19937 rng(seed);
    automaton aut(mgr, vars);
    const std::size_t n = 3 + seed % 4;
    for (std::size_t s = 0; s < n; ++s) { aut.add_state((rng() & 1) != 0); }
    aut.set_initial(0);
    // random labelled edges; labels are random cubes over the vars
    const std::size_t m = n * 2 + rng() % 5;
    for (std::size_t e = 0; e < m; ++e) {
        const auto src = static_cast<std::uint32_t>(rng() % n);
        const auto dst = static_cast<std::uint32_t>(rng() % n);
        bdd label = mgr.one();
        for (const std::uint32_t v : vars) {
            const auto roll = rng() % 3;
            if (roll == 0) { label &= mgr.var(v); }
            if (roll == 1) { label &= mgr.nvar(v); }
        }
        aut.add_transition(src, dst, label);
    }
    return aut;
}

class theorem1_property : public ::testing::TestWithParam<unsigned> {};

TEST_P(theorem1_property, completion_and_determinization_commute) {
    bdd_manager mgr(4);
    const std::vector<std::uint32_t> vars{0, 1};
    const automaton a = random_automaton(mgr, vars, GetParam());
    const automaton lhs = complete(determinize(a));
    const automaton rhs = determinize(complete(a));
    EXPECT_TRUE(language_equivalent(lhs, rhs)) << "seed " << GetParam();
    // and both preserve the original language
    EXPECT_TRUE(language_equivalent(lhs, determinize(a)));
}

INSTANTIATE_TEST_SUITE_P(random_seeds, theorem1_property,
                         ::testing::Range(0u, 15u));

/// Determinization preserves the language (subset-construction soundness).
class determinize_property : public ::testing::TestWithParam<unsigned> {};

TEST_P(determinize_property, preserves_language) {
    bdd_manager mgr(4);
    const std::vector<std::uint32_t> vars{0, 1};
    const automaton a = random_automaton(mgr, vars, 100 + GetParam());
    const automaton d = determinize(a);
    EXPECT_TRUE(is_deterministic(d));
    EXPECT_TRUE(language_equivalent(a, d));
}

INSTANTIATE_TEST_SUITE_P(random_seeds, determinize_property,
                         ::testing::Range(0u, 15u));

// ---------------------------------------------------------------------------
// STG extraction
// ---------------------------------------------------------------------------

TEST(stg, paper_example_automaton) {
    // Figure 3: 3 reachable states; deterministic; incomplete (o is a
    // function of the state)
    const network net = make_paper_example();
    bdd_manager mgr(2);
    const automaton aut = network_to_automaton(mgr, net, {0}, {1});
    EXPECT_EQ(aut.num_states(), 3u);
    EXPECT_TRUE(is_deterministic(aut));
    EXPECT_FALSE(is_complete(aut));
    for (std::uint32_t s = 0; s < aut.num_states(); ++s) {
        EXPECT_TRUE(aut.accepting(s));
    }
}

TEST(stg, traffic_controller_states) {
    const network net = make_traffic_controller();
    bdd_manager mgr(8);
    const automaton aut =
        network_to_automaton(mgr, net, {0, 1}, {2, 3, 4, 5});
    EXPECT_EQ(aut.num_states(), 5u); // HG HY AR FG FY
    EXPECT_TRUE(is_deterministic(aut));
}

TEST(stg, respects_state_cap) {
    const network net = make_counter(8);
    bdd_manager mgr(8);
    EXPECT_THROW(network_to_automaton(mgr, net, {0, 1}, {2}, 10),
                 std::runtime_error);
}

} // namespace

namespace {

using namespace leq;

TEST(minimize_test, collapses_equivalent_states) {
    bdd_manager mgr(2);
    automaton aut(mgr, {0});
    // two interchangeable accepting states looping to each other on var0
    const auto s0 = aut.add_state(true);
    const auto s1 = aut.add_state(true);
    aut.set_initial(s0);
    aut.add_transition(s0, s1, mgr.var(0));
    aut.add_transition(s1, s0, mgr.var(0));
    const automaton m = minimize(aut);
    EXPECT_EQ(m.num_states(), 1u);
    EXPECT_TRUE(language_equivalent(m, aut));
}

TEST(minimize_test, keeps_distinguishable_states) {
    bdd_manager mgr(2);
    automaton aut(mgr, {0});
    const auto s0 = aut.add_state(true);
    const auto s1 = aut.add_state(true);
    aut.set_initial(s0);
    aut.add_transition(s0, s1, mgr.var(0));
    aut.add_transition(s1, s0, mgr.nvar(0)); // different guard: distinct
    const automaton m = minimize(aut);
    EXPECT_EQ(m.num_states(), 2u);
    EXPECT_TRUE(language_equivalent(m, aut));
}

TEST(minimize_test, rejects_nondeterministic_input) {
    bdd_manager mgr(2);
    automaton aut(mgr, {0});
    const auto s0 = aut.add_state(true);
    const auto s1 = aut.add_state(false);
    aut.set_initial(s0);
    aut.add_transition(s0, s0, mgr.one());
    aut.add_transition(s0, s1, mgr.var(0));
    EXPECT_THROW(minimize(aut), std::logic_error);
}

class minimize_property : public ::testing::TestWithParam<unsigned> {};

TEST_P(minimize_property, preserves_language_and_is_minimal) {
    bdd_manager mgr(4);
    const std::vector<std::uint32_t> vars{0, 1};
    const automaton a =
        determinize(random_automaton(mgr, vars, 500 + GetParam()));
    const automaton m = minimize(a);
    EXPECT_TRUE(language_equivalent(a, m));
    EXPECT_LE(m.num_states(), trim_unreachable(a).num_states());
    // idempotent
    EXPECT_EQ(minimize(m).num_states(), m.num_states());
}

INSTANTIATE_TEST_SUITE_P(random_seeds, minimize_property,
                         ::testing::Range(0u, 12u));

} // namespace
