/// \file test_solver_edges.cpp
/// \brief Edge cases of the solver entry points: resource limits, option
/// combinations, and degenerate interfaces (combinational F or S, empty
/// variable groups).

#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

// ---------------------------------------------------------------------------
// resource limits
// ---------------------------------------------------------------------------

TEST(solver_edges, subset_state_limit_reports_state_limit) {
    const network original = make_counter(4);
    const split_result split = split_latches(original, {3});
    const equation_problem problem(split.fixed, original);
    solve_options options;
    options.max_subset_states = 1;
    const solve_result r = solve_partitioned(problem, options);
    EXPECT_EQ(r.status, solve_status::state_limit);
    EXPECT_FALSE(r.csf.has_value());
}

TEST(solver_edges, tiny_time_limit_reports_timeout) {
    structured_spec spec;
    spec.num_inputs = 3;
    spec.num_outputs = 6;
    spec.num_latches = 14;
    spec.seed = 14;
    const network original = make_structured_mix(spec);
    const split_result split = split_last_latches(original, 7);
    const equation_problem problem(split.fixed, original);
    solve_options options;
    options.time_limit_seconds = 1e-9;
    EXPECT_EQ(solve_partitioned(problem, options).status,
              solve_status::timeout);
    EXPECT_EQ(solve_monolithic(problem, options).status,
              solve_status::timeout);
}

TEST(solver_edges, saturation_time_limit_reports_timeout) {
    // the deadline armed from time_limit_seconds trips inside the
    // saturation worklist too; both solvers must translate the throw into
    // a timeout status instead of leaking the exception
    structured_spec spec;
    spec.num_inputs = 3;
    spec.num_outputs = 6;
    spec.num_latches = 14;
    spec.seed = 14;
    const network original = make_structured_mix(spec);
    const split_result split = split_last_latches(original, 7);
    const equation_problem problem(split.fixed, original);
    solve_options options;
    options.img.strategy = reach_strategy::saturation;
    options.time_limit_seconds = 1e-9;
    EXPECT_EQ(solve_partitioned(problem, options).status,
              solve_status::timeout);
    EXPECT_EQ(solve_monolithic(problem, options).status,
              solve_status::timeout);
}

// ---------------------------------------------------------------------------
// option combinations must not change the answer
// ---------------------------------------------------------------------------

TEST(solver_edges, naive_image_mode_matches_scheduled) {
    const network original = make_traffic_controller();
    const split_result split = split_latches(original, {1});
    const equation_problem problem(split.fixed, original);
    const solve_result scheduled = solve_partitioned(problem);
    solve_options naive;
    naive.img.early_quantification = false;
    const solve_result plain = solve_partitioned(problem, naive);
    ASSERT_EQ(scheduled.status, solve_status::ok);
    ASSERT_EQ(plain.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*scheduled.csf, *plain.csf));
}

TEST(solver_edges, clustering_disabled_matches) {
    const network original = make_counter(4);
    const split_result split = split_latches(original, {3});
    const equation_problem problem(split.fixed, original);
    const solve_result base = solve_partitioned(problem);
    solve_options no_cluster;
    no_cluster.img.cluster_limit = 0;
    const solve_result flat = solve_partitioned(problem, no_cluster);
    ASSERT_EQ(base.status, solve_status::ok);
    ASSERT_EQ(flat.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*base.csf, *flat.csf));
}

TEST(solver_edges, monolithic_trim_off_matches_language) {
    const network original = make_counter(3);
    const split_result split = split_latches(original, {2});
    const equation_problem problem(split.fixed, original);
    const solve_result trimmed = solve_monolithic(problem);
    solve_options off;
    off.trim_nonconforming = false;
    const solve_result full = solve_monolithic(problem, off);
    ASSERT_EQ(trimmed.status, solve_status::ok);
    ASSERT_EQ(full.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*trimmed.csf, *full.csf));
    // the ablation's point: trimming never explores more subsets
    EXPECT_LE(trimmed.subset_states_explored, full.subset_states_explored);
}

// ---------------------------------------------------------------------------
// degenerate interfaces
// ---------------------------------------------------------------------------

TEST(solver_edges, combinational_fixed_component) {
    // F has no latches at all: o = v, u = i (a pure wire box)
    network f("wires");
    f.add_input("a");
    f.add_input("xv");
    f.add_node("z", {"xv"}, {"1"});
    f.add_node("xu", {"a"}, {"1"});
    f.add_output("z");
    f.add_output("xu");
    f.validate();
    // spec: z must equal a delayed once
    network s("delay");
    s.add_input("a");
    s.add_latch("a", "d", false);
    s.add_node("z", {"d"}, {"1"});
    s.add_output("z");
    s.validate();

    const equation_problem problem(f, s);
    EXPECT_TRUE(problem.cs_f.empty());
    const solve_result part = solve_partitioned(problem);
    const solve_result mono = solve_monolithic(problem);
    const solve_result oracle = solve_explicit(problem, f, s);
    ASSERT_EQ(part.status, solve_status::ok);
    ASSERT_EQ(mono.status, solve_status::ok);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_FALSE(part.empty_solution); // X = one-bit delay works
    EXPECT_TRUE(language_equivalent(*part.csf, *mono.csf));
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf));
}

TEST(solver_edges, combinational_specification) {
    // S has no latches: z == a combinationally; F wires v to z and a to u
    network f("wires");
    f.add_input("a");
    f.add_input("xv");
    f.add_node("z", {"xv"}, {"1"});
    f.add_node("xu", {"a"}, {"1"});
    f.add_output("z");
    f.add_output("xu");
    f.validate();
    network s("identity");
    s.add_input("a");
    s.add_node("z", {"a"}, {"1"});
    s.add_output("z");
    s.validate();

    const equation_problem problem(f, s);
    EXPECT_TRUE(problem.cs_s.empty());
    const solve_result part = solve_partitioned(problem);
    const solve_result oracle = solve_explicit(problem, f, s);
    ASSERT_EQ(part.status, solve_status::ok);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_FALSE(part.empty_solution); // X = identity (v = u) works
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf));

    // the identity machine is allowed, the inverter is not
    bdd_manager& mgr = problem.mgr();
    automaton ident(mgr, part.csf->label_vars());
    ident.add_state(true);
    ident.set_initial(0);
    ident.add_transition(
        0, 0, mgr.var(problem.u_vars[0]).iff(mgr.var(problem.v_vars[0])));
    EXPECT_TRUE(language_contained(ident, *part.csf));
    automaton inv(mgr, part.csf->label_vars());
    inv.add_state(true);
    inv.set_initial(0);
    inv.add_transition(
        0, 0, mgr.var(problem.u_vars[0]) ^ mgr.var(problem.v_vars[0]));
    EXPECT_FALSE(language_contained(inv, *part.csf));
}

TEST(solver_edges, unknown_with_no_outputs) {
    // |v| = 0: X only observes u; F alone must already implement S for a
    // solution to exist (X cannot influence anything)
    network f("observer");
    f.add_input("a");
    f.add_latch("a", "d", false);
    f.add_node("z", {"d"}, {"1"});
    f.add_node("xu", {"a"}, {"1"});
    f.add_output("z");
    f.add_output("xu");
    f.validate();
    network s("delay");
    s.add_input("a");
    s.add_latch("a", "e", false);
    s.add_node("z", {"e"}, {"1"});
    s.add_output("z");
    s.validate();

    const equation_problem problem(f, s);
    EXPECT_TRUE(problem.v_vars.empty());
    const solve_result part = solve_partitioned(problem);
    const solve_result oracle = solve_explicit(problem, f, s);
    ASSERT_EQ(part.status, solve_status::ok);
    ASSERT_EQ(oracle.status, solve_status::ok);
    EXPECT_FALSE(part.empty_solution); // F == S here, so X may be anything
    EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf));
}

TEST(solver_edges, unknown_with_no_outputs_unsatisfiable) {
    // same shape but F violates S on its own: no X can help
    network f("wrong");
    f.add_input("a");
    f.add_latch("a", "d", false);
    f.add_node("z", {"d"}, {"0"}); // inverted delay
    f.add_node("xu", {"a"}, {"1"});
    f.add_output("z");
    f.add_output("xu");
    f.validate();
    network s("delay");
    s.add_input("a");
    s.add_latch("a", "e", false);
    s.add_node("z", {"e"}, {"1"});
    s.add_output("z");
    s.validate();

    const equation_problem problem(f, s);
    const solve_result part = solve_partitioned(problem);
    ASSERT_EQ(part.status, solve_status::ok);
    EXPECT_TRUE(part.empty_solution);
}

} // namespace
