/// \file test_img.cpp
/// \brief Tests for partitioned image computation and reachability.

#include "gen/scenario.hpp"
#include "img/image.hpp"
#include "net/generator.hpp"
#include "net/netbdd.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <set>

namespace {

using namespace leq;

struct circuit_vars {
    std::vector<std::uint32_t> in, cs, ns;
};

/// Allocate variables (inputs first, then interleaved cs/ns) and build the
/// partitioned functions.
std::pair<net_bdds, circuit_vars> setup(bdd_manager& mgr, const network& net) {
    circuit_vars vars;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        vars.in.push_back(mgr.new_var());
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        vars.cs.push_back(mgr.new_var());
        vars.ns.push_back(mgr.new_var());
    }
    net_bdds fns = build_net_bdds(mgr, net, vars.in, vars.cs);
    return {std::move(fns), std::move(vars)};
}

/// Explicit BFS over the state graph (oracle for symbolic reachability).
std::set<std::vector<bool>> explicit_reachable(const network& net) {
    std::set<std::vector<bool>> seen;
    std::queue<std::vector<bool>> work;
    work.push(net.initial_state());
    seen.insert(net.initial_state());
    const std::size_t ni = net.num_inputs();
    while (!work.empty()) {
        const std::vector<bool> s = work.front();
        work.pop();
        for (std::size_t m = 0; m < (1u << ni); ++m) {
            std::vector<bool> in(ni);
            for (std::size_t b = 0; b < ni; ++b) { in[b] = ((m >> b) & 1) != 0; }
            const auto r = net.simulate(s, in);
            if (seen.insert(r.next_state).second) { work.push(r.next_state); }
        }
    }
    return seen;
}

class reach_property : public ::testing::TestWithParam<int> {};

TEST_P(reach_property, symbolic_reachability_matches_explicit_bfs) {
    const network net = make_menu_circuit(GetParam(), /*salt=*/1);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const bdd reached =
        reachable_states(mgr, fns.next_state, vars.cs, vars.ns, vars.in, init);

    const auto oracle = explicit_reachable(net);
    EXPECT_DOUBLE_EQ(
        mgr.sat_count(reached, static_cast<std::uint32_t>(vars.cs.size())) *
            1.0,
        static_cast<double>(oracle.size()))
        << "circuit " << GetParam();
    // membership agrees state by state
    for (const auto& s : oracle) {
        EXPECT_FALSE((state_cube(mgr, vars.cs, s) & reached).is_zero());
    }
}

INSTANTIATE_TEST_SUITE_P(circuit_families, reach_property,
                         ::testing::Range(0, 10));

TEST(image_engine, early_and_naive_modes_agree) {
    const network net = make_lfsr(6, {1, 3});
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);

    std::vector<bdd> parts;
    for (std::size_t k = 0; k < fns.next_state.size(); ++k) {
        parts.push_back(mgr.var(vars.ns[k]).iff(fns.next_state[k]));
    }
    std::vector<std::uint32_t> quantify = vars.in;
    quantify.insert(quantify.end(), vars.cs.begin(), vars.cs.end());

    image_options early;
    image_options naive;
    naive.early_quantification = false;
    const image_engine e1(mgr, parts, quantify, early);
    const image_engine e2(mgr, parts, quantify, naive);

    const bdd from = state_cube(mgr, vars.cs, net.initial_state());
    EXPECT_EQ(e1.image(from), e2.image(from));
    // also from a non-singleton set
    const bdd set = from | state_cube(mgr, vars.cs,
                                      {true, false, true, false, true, false});
    EXPECT_EQ(e1.image(set), e2.image(set));
}

TEST(image_engine, clustering_reduces_part_count) {
    const network net = make_counter(8);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    std::vector<bdd> parts;
    for (std::size_t k = 0; k < fns.next_state.size(); ++k) {
        parts.push_back(mgr.var(vars.ns[k]).iff(fns.next_state[k]));
    }
    std::vector<std::uint32_t> quantify = vars.in;
    quantify.insert(quantify.end(), vars.cs.begin(), vars.cs.end());

    image_options big_clusters;
    big_clusters.cluster_limit = 100000;
    image_options no_clusters;
    no_clusters.cluster_limit = 0;
    const image_engine clustered(mgr, parts, quantify, big_clusters);
    const image_engine flat(mgr, parts, quantify, no_clusters);
    EXPECT_LT(clustered.num_clusters(), flat.num_clusters());
    EXPECT_EQ(flat.num_clusters(), parts.size());
    // same results either way
    const bdd from = state_cube(mgr, vars.cs, net.initial_state());
    EXPECT_EQ(clustered.image(from), flat.image(from));
}

TEST(image_engine, image_of_empty_set_is_empty) {
    const network net = make_counter(3);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    std::vector<bdd> parts;
    for (std::size_t k = 0; k < fns.next_state.size(); ++k) {
        parts.push_back(mgr.var(vars.ns[k]).iff(fns.next_state[k]));
    }
    std::vector<std::uint32_t> quantify = vars.in;
    quantify.insert(quantify.end(), vars.cs.begin(), vars.cs.end());
    const image_engine engine(mgr, parts, quantify);
    EXPECT_TRUE(engine.image(mgr.zero()).is_zero());
}

TEST(reachability, counter_reaches_every_state) {
    const network net = make_counter(6);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const bdd reached =
        reachable_states(mgr, fns.next_state, vars.cs, vars.ns, vars.in, init);
    EXPECT_DOUBLE_EQ(mgr.sat_count(reached, 6), 64.0);
}

TEST(reachability, holds_without_inputs_quantified_only_over_cs) {
    // a free-running 3-bit counter (enable tied high conceptually): build by
    // passing no input vars and substituting constants is not supported, so
    // verify instead that the reachable set from a mid state stays inside
    // the full reachable set
    const network net = make_counter(3);
    bdd_manager mgr;
    auto [fns, vars] = setup(mgr, net);
    const bdd from_mid = state_cube(mgr, vars.cs, {true, true, false});
    const bdd r_mid =
        reachable_states(mgr, fns.next_state, vars.cs, vars.ns, vars.in, from_mid);
    const bdd init = state_cube(mgr, vars.cs, net.initial_state());
    const bdd r_all =
        reachable_states(mgr, fns.next_state, vars.cs, vars.ns, vars.in, init);
    EXPECT_TRUE(r_mid.leq(r_all));
}

} // namespace
