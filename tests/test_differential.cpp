/// \file test_differential.cpp
/// \brief Quick-label differential entry point: every scenario family must
/// pass the full cross-flow oracle.  This replaces the ad-hoc per-file
/// cross-check loops as the first thing to run when touching a solver flow
/// (`ctest -R test_differential`); test_random_crosscheck remains the
/// slow-label deep sweep.

#include "gen/differential.hpp"
#include "gen/fuzz.hpp"
#include "gen/scenario.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

class differential_families
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(differential_families, all_flows_agree_and_csf_verifies) {
    const auto family = all_scenario_families[std::get<0>(GetParam())];
    const std::uint32_t seed = test_seed(std::get<1>(GetParam()));
    const scenario sc = make_scenario(family, seed);
    const differential_outcome out = run_differential(sc);
    EXPECT_TRUE(out.ok) << sc.name << ": " << out.failure
                        << " (replay: LEQ_TEST_SEED=" << seed << ")";
    // partitioned matrix + monolithic always run; the oracle joins on the
    // small instances, which every family produces for low seeds
    EXPECT_GE(out.flows_run, default_option_matrix().size() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    families_x_seeds, differential_families,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(differential_oracle, explicit_flow_joins_every_family) {
    // each family must produce instances small enough for Algorithm 1 on a
    // short seed sweep, so all three flows get differential coverage
    for (const scenario_family family : all_scenario_families) {
        bool oracle_joined = false;
        for (std::uint32_t seed = 1; seed <= 6 && !oracle_joined; ++seed) {
            const scenario sc = make_scenario(family, seed);
            const differential_outcome out = run_differential(sc);
            ASSERT_TRUE(out.ok) << sc.name << ": " << out.failure;
            oracle_joined = out.oracle_run;
        }
        EXPECT_TRUE(oracle_joined) << to_string(family);
    }
}

TEST(differential_oracle, mutants_exercise_the_diagnosis_replay) {
    // across a seed sweep at least some mutants must break X_P containment
    // (that is what makes them near misses) and every diagnosis that fires
    // must replay as a real difference word — run_differential fails
    // otherwise, so a clean sweep is the assertion
    std::size_t empty_or_shrunk = 0;
    for (std::uint32_t seed = 1; seed <= 12; ++seed) {
        const scenario sc = make_scenario(scenario_family::mutant, seed);
        const differential_outcome out = run_differential(sc);
        EXPECT_TRUE(out.ok) << sc.name << ": " << out.failure;
        if (out.empty_solution) { ++empty_or_shrunk; }
    }
    // mutation is a near miss, not a no-op: a decent fraction of the seeds
    // must actually lose solvability
    EXPECT_GE(empty_or_shrunk, 1u);
}

TEST(differential_options_, matrix_is_a_real_sweep) {
    const std::vector<image_options> matrix = default_option_matrix();
    ASSERT_GE(matrix.size(), 3u);
    // at least three strategies (saturation included) and both cluster
    // policies appear
    bool bfs = false, frontier = false, saturation = false, affinity = false;
    for (const image_options& o : matrix) {
        bfs |= o.strategy == reach_strategy::bfs;
        frontier |= o.strategy == reach_strategy::frontier;
        saturation |= o.strategy == reach_strategy::saturation;
        affinity |= o.policy == cluster_policy::affinity;
    }
    EXPECT_TRUE(bfs);
    EXPECT_TRUE(frontier);
    EXPECT_TRUE(saturation);
    EXPECT_TRUE(affinity);
    EXPECT_FALSE(describe_option_matrix(matrix).empty());
}

TEST(differential_fuzz, short_campaign_is_clean) {
    fuzz_options options;
    options.seeds = 3;
    options.seed_base = test_seed(100);
    const fuzz_report report = run_fuzz(options);
    EXPECT_TRUE(report.ok())
        << report.failures.front().failure
        << " (replay: LEQ_TEST_SEED=" << options.seed_base << ")";
    EXPECT_EQ(report.scenarios_run, 3u * 7u);
}

} // namespace
