/// \file test_encode_compose.cpp
/// \brief Closing the synthesis loop: FSM-to-network encoding, network
/// composition, and the end-to-end circuit-level round trip
/// (split -> solve -> extract -> encode -> compose -> compare with S).

#include "eq/extract.hpp"
#include "eq/solver.hpp"
#include "net/compose.hpp"
#include "automata/encode.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace leq;

TEST(encode_test, single_state_identity_fsm) {
    bdd_manager mgr(2);
    automaton fsm(mgr, {0, 1}); // u = var0, v = var1
    fsm.set_initial(fsm.add_state(true));
    // v always equals u
    fsm.add_transition(0, 0, mgr.var(0).iff(mgr.var(1)));
    const network net =
        automaton_to_network(fsm, {0}, {1}, {"in"}, {"out"}, "ident");
    EXPECT_EQ(net.num_inputs(), 1u);
    EXPECT_EQ(net.num_outputs(), 1u);
    const auto state = net.initial_state();
    EXPECT_TRUE(net.simulate(state, {true}).outputs[0]);
    EXPECT_FALSE(net.simulate(state, {false}).outputs[0]);
}

TEST(encode_test, rejects_nondeterministic) {
    bdd_manager mgr(2);
    automaton bad(mgr, {0, 1});
    bad.set_initial(bad.add_state(true));
    const auto s1 = bad.add_state(true);
    bad.add_transition(0, 0, mgr.var(0));
    bad.add_transition(0, s1, mgr.var(0) & mgr.var(1));
    EXPECT_THROW(automaton_to_network(bad, {0}, {1}, {"a"}, {"b"}),
                 std::invalid_argument);
}

/// Walk the FSM automaton and the encoded network side by side on random
/// inputs; outputs must agree cycle by cycle.
void check_encoding_simulates(const automaton& fsm,
                              const std::vector<std::uint32_t>& u_vars,
                              const std::vector<std::uint32_t>& v_vars,
                              unsigned seed) {
    std::vector<std::string> ins, outs;
    for (std::size_t k = 0; k < u_vars.size(); ++k) {
        ins.push_back("u" + std::to_string(k));
    }
    for (std::size_t k = 0; k < v_vars.size(); ++k) {
        outs.push_back("v" + std::to_string(k));
    }
    const network net = automaton_to_network(fsm, u_vars, v_vars, ins, outs);
    bdd_manager& mgr = fsm.manager();

    std::mt19937 rng(seed);
    std::uint32_t q = fsm.initial();
    std::vector<bool> state = net.initial_state();
    for (int step = 0; step < 200; ++step) {
        std::vector<bool> u(u_vars.size());
        for (auto&& b : u) { b = (rng() & 1) != 0; }
        // find the FSM transition enabled by u
        bdd u_cube = mgr.one();
        for (std::size_t m = 0; m < u_vars.size(); ++m) {
            u_cube &= mgr.literal(u_vars[m], u[m]);
        }
        const transition* taken = nullptr;
        for (const transition& t : fsm.transitions(q)) {
            if (!(t.label & u_cube).is_zero()) {
                taken = &t;
                break;
            }
        }
        ASSERT_NE(taken, nullptr) << "FSM not input-progressive at step "
                                  << step;
        const bdd enabled = taken->label & u_cube;
        const auto r = net.simulate(state, u);
        // the network's v output must satisfy the transition label
        std::vector<bool> full(mgr.num_vars(), false);
        for (std::size_t m = 0; m < u_vars.size(); ++m) {
            full[u_vars[m]] = u[m];
        }
        for (std::size_t m = 0; m < v_vars.size(); ++m) {
            full[v_vars[m]] = r.outputs[m];
        }
        EXPECT_TRUE(mgr.eval(enabled, full)) << "step " << step;
        q = taken->dest;
        state = r.next_state;
    }
}

TEST(encode_test, extracted_fsm_simulates_correctly) {
    const network original = make_traffic_controller();
    const split_result split = split_latches(original, {1});
    const equation_problem problem(split.fixed, original);
    const solve_result result = solve_partitioned(problem);
    ASSERT_EQ(result.status, solve_status::ok);
    const automaton fsm =
        extract_fsm(*result.csf, problem.u_vars, problem.v_vars);
    check_encoding_simulates(fsm, problem.u_vars, problem.v_vars, 11);
}

TEST(compose_test, f_with_xp_reproduces_original) {
    // the canonical round trip: composing F with the extracted latches must
    // be cycle-equivalent to the original circuit
    for (int id = 0; id < 4; ++id) {
        const network original = id == 0   ? make_counter(5)
                                 : id == 1 ? make_lfsr(5, {2})
                                 : id == 2 ? make_traffic_controller()
                                           : make_shift_xor(4);
        const std::vector<std::size_t> cut{0, original.num_latches() - 1};
        const split_result split = split_latches(original, cut);
        const network composed = compose_networks(
            split.fixed, split.part, split.u_names, split.v_names);
        EXPECT_EQ(composed.num_inputs(), original.num_inputs());
        EXPECT_EQ(composed.num_outputs(), original.num_outputs());
        EXPECT_EQ(composed.num_latches(), original.num_latches());

        std::mt19937 rng(13 + id);
        std::vector<bool> s1 = original.initial_state();
        std::vector<bool> s2 = composed.initial_state();
        for (int step = 0; step < 300; ++step) {
            std::vector<bool> in(original.num_inputs());
            for (auto&& b : in) { b = (rng() & 1) != 0; }
            const auto r1 = original.simulate(s1, in);
            const auto r2 = composed.simulate(s2, in);
            ASSERT_EQ(r1.outputs, r2.outputs) << "circuit " << id << " step "
                                              << step;
            s1 = r1.next_state;
            s2 = r2.next_state;
        }
    }
}

TEST(compose_test, rejects_combinational_loop) {
    // F: u = v combinationally; X: v = u combinationally -> cycle
    network f("f");
    f.add_input("i");
    f.add_input("v");
    f.add_output("o");
    f.add_output("u");
    f.add_node("o", {"i"}, {"1"});
    f.add_node("u", {"v"}, {"1"});
    f.validate();
    network x("x");
    x.add_input("a");
    x.add_output("b");
    x.add_node("b", {"a"}, {"1"});
    x.validate();
    EXPECT_THROW(compose_networks(f, x, {"u"}, {"v"}), std::runtime_error);
}

TEST(compose_test, port_count_mismatch_rejected) {
    const network original = make_counter(3);
    const split_result split = split_latches(original, {2});
    EXPECT_THROW(compose_networks(split.fixed, split.part, {}, {}),
                 std::invalid_argument);
}

} // namespace
