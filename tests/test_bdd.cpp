/// \file test_bdd.cpp
/// \brief Unit and property tests for the ROBDD package.

#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace {

using leq::bdd;
using leq::bdd_manager;

TEST(bdd_basic, constants_are_distinct_and_fixed) {
    bdd_manager m(4);
    EXPECT_TRUE(m.zero().is_zero());
    EXPECT_TRUE(m.one().is_one());
    EXPECT_NE(m.zero(), m.one());
    EXPECT_TRUE(m.zero().is_const());
    EXPECT_TRUE(m.one().is_const());
}

TEST(bdd_basic, variable_canonical) {
    bdd_manager m(4);
    EXPECT_EQ(m.var(0), m.var(0));
    EXPECT_NE(m.var(0), m.var(1));
    EXPECT_EQ(m.nvar(2), !m.var(2));
}

TEST(bdd_basic, and_or_terminal_rules) {
    bdd_manager m(4);
    const bdd x = m.var(0);
    EXPECT_EQ(x & m.one(), x);
    EXPECT_EQ(x & m.zero(), m.zero());
    EXPECT_EQ(x | m.one(), m.one());
    EXPECT_EQ(x | m.zero(), x);
    EXPECT_EQ(x & x, x);
    EXPECT_EQ(x | x, x);
    EXPECT_EQ(x ^ x, m.zero());
}

TEST(bdd_basic, negation_involution) {
    bdd_manager m(6);
    const bdd f = (m.var(0) & m.var(1)) | (m.var(2) ^ m.var(3));
    EXPECT_EQ(!!f, f);
    EXPECT_EQ(f & !f, m.zero());
    EXPECT_EQ(f | !f, m.one());
}

TEST(bdd_basic, implies_iff) {
    bdd_manager m(3);
    const bdd a = m.var(0), b = m.var(1);
    EXPECT_EQ(a.implies(b), (!a) | b);
    EXPECT_EQ(a.iff(b), (a & b) | ((!a) & (!b)));
    EXPECT_TRUE((a & b).leq(a));
    EXPECT_FALSE(a.leq(a & b));
}

TEST(bdd_basic, ite_matches_definition) {
    bdd_manager m(5);
    const bdd f = m.var(0), g = m.var(1) & m.var(2), h = m.var(3) | m.var(4);
    EXPECT_EQ(m.ite(f, g, h), (f & g) | ((!f) & h));
    EXPECT_EQ(m.ite(m.one(), g, h), g);
    EXPECT_EQ(m.ite(m.zero(), g, h), h);
    EXPECT_EQ(m.ite(f, m.one(), m.zero()), f);
    EXPECT_EQ(m.ite(f, m.zero(), m.one()), !f);
}

TEST(bdd_quant, exists_removes_variable) {
    bdd_manager m(4);
    const bdd f = (m.var(0) & m.var(1)) | ((!m.var(0)) & m.var(2));
    const bdd q = m.exists(f, m.cube({0}));
    EXPECT_EQ(q, m.var(1) | m.var(2));
    const std::vector<std::uint32_t> s = m.support(q);
    EXPECT_EQ(s, (std::vector<std::uint32_t>{1, 2}));
}

TEST(bdd_quant, forall_dual_of_exists) {
    bdd_manager m(4);
    const bdd f = (m.var(0) & m.var(1)) | (m.var(2) & !m.var(1));
    const bdd c = m.cube({1});
    EXPECT_EQ(m.forall(f, c), !m.exists(!f, c));
}

TEST(bdd_quant, and_exists_equals_exists_of_and) {
    bdd_manager m(6);
    const bdd f = (m.var(0) & m.var(2)) | (m.var(1) & m.var(4));
    const bdd g = (m.var(2) ^ m.var(3)) | m.var(5);
    const bdd c = m.cube({2, 4});
    EXPECT_EQ(m.and_exists(f, g, c), m.exists(f & g, c));
}

TEST(bdd_quant, exists_of_independent_variable_is_identity) {
    bdd_manager m(4);
    const bdd f = m.var(1) & m.var(3);
    EXPECT_EQ(m.exists(f, m.cube({0})), f);
    EXPECT_EQ(m.exists(f, m.cube({2})), f);
}

TEST(bdd_subst, permute_renames_support) {
    bdd_manager m(6);
    const bdd f = (m.var(0) & m.var(1)) | m.var(2);
    std::vector<std::uint32_t> perm{3, 4, 5, 0, 1, 2};
    const bdd g = m.permute(f, perm);
    EXPECT_EQ(g, (m.var(3) & m.var(4)) | m.var(5));
    // round-trip
    EXPECT_EQ(m.permute(g, perm), f);
}

TEST(bdd_subst, compose_substitutes_function) {
    bdd_manager m(5);
    const bdd f = m.var(0) & m.var(1);
    const bdd g = m.var(2) | m.var(3);
    EXPECT_EQ(m.compose(f, 1, g), m.var(0) & (m.var(2) | m.var(3)));
    // compose with the variable itself is identity
    EXPECT_EQ(m.compose(f, 1, m.var(1)), f);
}

TEST(bdd_subst, cofactor_by_cube) {
    bdd_manager m(4);
    const bdd f = (m.var(0) & m.var(1)) | ((!m.var(0)) & m.var(2));
    EXPECT_EQ(m.cofactor(f, m.var(0)), m.var(1));
    EXPECT_EQ(m.cofactor(f, !m.var(0)), m.var(2));
    EXPECT_EQ(m.cofactor(f, m.var(0) & m.var(1)), m.one());
}

TEST(bdd_util, support_and_dag_size) {
    bdd_manager m(8);
    const bdd f = (m.var(1) & m.var(3)) ^ m.var(5);
    EXPECT_EQ(m.support(f), (std::vector<std::uint32_t>{1, 3, 5}));
    EXPECT_GE(m.dag_size(f), 4u);
    EXPECT_EQ(m.support(m.one()), std::vector<std::uint32_t>{});
}

TEST(bdd_util, sat_count_small_functions) {
    bdd_manager m(3);
    EXPECT_DOUBLE_EQ(m.sat_count(m.one(), 3), 8.0);
    EXPECT_DOUBLE_EQ(m.sat_count(m.zero(), 3), 0.0);
    EXPECT_DOUBLE_EQ(m.sat_count(m.var(0), 3), 4.0);
    EXPECT_DOUBLE_EQ(m.sat_count(m.var(0) & m.var(1), 3), 2.0);
    EXPECT_DOUBLE_EQ(m.sat_count(m.var(0) ^ m.var(1), 3), 4.0);
}

TEST(bdd_util, eval_agrees_with_structure) {
    bdd_manager m(3);
    const bdd f = (m.var(0) & m.var(1)) | m.var(2);
    EXPECT_TRUE(m.eval(f, {true, true, false}));
    EXPECT_TRUE(m.eval(f, {false, false, true}));
    EXPECT_FALSE(m.eval(f, {true, false, false}));
}

TEST(bdd_util, pick_cube_is_satisfying_implicant) {
    bdd_manager m(4);
    const bdd f = (m.var(0) & !m.var(2)) | (m.var(1) & m.var(3));
    const bdd c = m.pick_cube(f);
    EXPECT_FALSE(c.is_zero());
    EXPECT_TRUE(c.leq(f));
}

TEST(bdd_util, foreach_cube_enumerates_minterms) {
    bdd_manager m(3);
    const bdd f = m.var(0) ^ m.var(1);
    std::size_t count = 0;
    double minterms = 0;
    m.foreach_cube(f, {0, 1, 2}, [&](const std::vector<int>& v) {
        ++count;
        int dc = 0;
        for (const int x : v) { dc += (x == 2); }
        minterms += 1 << dc;
    });
    EXPECT_GE(count, 2u);
    EXPECT_DOUBLE_EQ(minterms, m.sat_count(f, 3));
}

TEST(bdd_util, to_string_round_trip_basics) {
    bdd_manager m(3);
    const std::vector<std::string> names{"a", "b", "c"};
    EXPECT_EQ(m.to_string(m.zero(), names), "0");
    EXPECT_EQ(m.to_string(m.one(), names), "1");
    EXPECT_EQ(m.to_string(m.var(1), names), "b");
}

TEST(bdd_order, custom_order_changes_levels_not_semantics) {
    bdd_manager m(4);
    m.set_var_order({3, 1, 0, 2});
    EXPECT_EQ(m.level_of(3), 0u);
    EXPECT_EQ(m.var_at_level(0), 3u);
    const bdd f = (m.var(0) & m.var(3)) | m.var(2);
    EXPECT_TRUE(m.eval(f, {false, false, true, false}));
    EXPECT_TRUE(m.eval(f, {true, false, false, true}));
    EXPECT_FALSE(m.eval(f, {true, false, false, false}));
}

TEST(bdd_order, set_order_rejects_bad_input) {
    bdd_manager m(3);
    EXPECT_THROW(m.set_var_order({0, 1}), std::invalid_argument);
    EXPECT_THROW(m.set_var_order({0, 0, 1}), std::invalid_argument);
    const bdd held = m.var(0);
    EXPECT_THROW(m.set_var_order({2, 1, 0}), std::logic_error);
}

TEST(bdd_gc, collect_preserves_live_handles) {
    bdd_manager m(16);
    bdd keep = m.one();
    for (std::uint32_t v = 0; v < 16; ++v) { keep &= m.var(v); }
    // create lots of garbage
    for (int round = 0; round < 50; ++round) {
        bdd junk = m.zero();
        for (std::uint32_t v = 0; v < 16; ++v) {
            junk |= m.var(v) & m.var((v + 3) % 16);
        }
    }
    m.collect_garbage();
    // keep must still be the full conjunction
    EXPECT_DOUBLE_EQ(m.sat_count(keep, 16), 1.0);
    bdd rebuilt = m.one();
    for (std::uint32_t v = 0; v < 16; ++v) { rebuilt &= m.var(v); }
    EXPECT_EQ(keep, rebuilt);
}

TEST(bdd_gc, stats_report_runs) {
    bdd_manager m(8);
    m.collect_garbage();
    EXPECT_GE(m.stats().gc_runs, 1u);
    EXPECT_GE(m.stats().num_vars, 8u);
}

// ---------------------------------------------------------------------------
// property tests: random-function sweeps (truth-table cross-check)
// ---------------------------------------------------------------------------

/// Build a BDD from an explicit truth table over `nvars` variables.
bdd from_truth_table(bdd_manager& m, const std::vector<bool>& tt,
                     std::uint32_t nvars) {
    bdd f = m.zero();
    for (std::size_t row = 0; row < tt.size(); ++row) {
        if (!tt[row]) { continue; }
        bdd term = m.one();
        for (std::uint32_t v = 0; v < nvars; ++v) {
            term &= m.literal(v, ((row >> v) & 1) != 0);
        }
        f |= term;
    }
    return f;
}

class bdd_property : public ::testing::TestWithParam<unsigned> {};

TEST_P(bdd_property, random_functions_respect_boolean_algebra) {
    const unsigned seed = GetParam();
    std::mt19937 rng(seed);
    constexpr std::uint32_t nvars = 5;
    constexpr std::size_t rows = 1u << nvars;
    bdd_manager m(nvars);

    std::vector<bool> tf(rows), tg(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        tf[r] = (rng() & 1) != 0;
        tg[r] = (rng() & 1) != 0;
    }
    const bdd f = from_truth_table(m, tf, nvars);
    const bdd g = from_truth_table(m, tg, nvars);

    // de Morgan
    EXPECT_EQ(!(f & g), (!f) | (!g));
    EXPECT_EQ(!(f | g), (!f) & (!g));
    // xor decomposition
    EXPECT_EQ(f ^ g, (f & !g) | ((!f) & g));
    // absorption
    EXPECT_EQ(f & (f | g), f);
    EXPECT_EQ(f | (f & g), f);
    // Shannon expansion on every variable
    for (std::uint32_t v = 0; v < nvars; ++v) {
        const bdd pos = m.cofactor(f, m.var(v));
        const bdd neg = m.cofactor(f, !m.var(v));
        EXPECT_EQ(f, m.ite(m.var(v), pos, neg));
        // quantifier identities
        EXPECT_EQ(m.exists(f, m.cube({v})), pos | neg);
        EXPECT_EQ(m.forall(f, m.cube({v})), pos & neg);
    }
    // and_exists over a random cube
    const bdd c = m.cube({0, 2, 4});
    EXPECT_EQ(m.and_exists(f, g, c), m.exists(f & g, c));

    // pointwise agreement with the truth table
    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<bool> a(nvars);
        for (std::uint32_t v = 0; v < nvars; ++v) { a[v] = ((r >> v) & 1) != 0; }
        EXPECT_EQ(m.eval(f, a), tf[r]);
        EXPECT_EQ(m.eval(f & g, a), tf[r] && tg[r]);
        EXPECT_EQ(m.eval(f ^ g, a), tf[r] != tg[r]);
    }
    // sat_count equals the truth-table count
    const double expected =
        static_cast<double>(std::count(tf.begin(), tf.end(), true));
    EXPECT_DOUBLE_EQ(m.sat_count(f, nvars), expected);
}

INSTANTIATE_TEST_SUITE_P(random_seeds, bdd_property,
                         ::testing::Range(0u, 20u));

/// Quantifier scheduling property: existential quantification distributes
/// over conjunction only when the variable is absent from one conjunct.
class bdd_quant_property : public ::testing::TestWithParam<unsigned> {};

TEST_P(bdd_quant_property, early_quantification_condition) {
    std::mt19937 rng(GetParam());
    constexpr std::uint32_t nvars = 6;
    bdd_manager m(nvars);
    // f over vars {0..2}, g over vars {3..5}: disjoint supports
    std::vector<bool> tf(1u << 3), tg(1u << 3);
    for (auto&& x : tf) { x = (rng() & 1) != 0; }
    for (auto&& x : tg) { x = (rng() & 1) != 0; }
    bdd f = m.zero(), g = m.zero();
    for (std::size_t r = 0; r < 8; ++r) {
        if (tf[r]) {
            bdd t = m.one();
            for (std::uint32_t v = 0; v < 3; ++v) {
                t &= m.literal(v, ((r >> v) & 1) != 0);
            }
            f |= t;
        }
        if (tg[r]) {
            bdd t = m.one();
            for (std::uint32_t v = 0; v < 3; ++v) {
                t &= m.literal(3 + v, ((r >> v) & 1) != 0);
            }
            g |= t;
        }
    }
    // var 0 occurs only in f: exists(f&g, 0) == exists(f,0) & g
    const bdd c0 = m.cube({0});
    EXPECT_EQ(m.exists(f & g, c0), m.exists(f, c0) & g);
    // var 3 occurs only in g
    const bdd c3 = m.cube({3});
    EXPECT_EQ(m.exists(f & g, c3), f & m.exists(g, c3));
}

INSTANTIATE_TEST_SUITE_P(random_seeds, bdd_quant_property,
                         ::testing::Range(0u, 10u));

} // namespace

namespace {

using leq::bdd;
using leq::bdd_manager;

TEST(bdd_gencof, constrain_agrees_on_care_set) {
    bdd_manager m(5);
    const bdd f = (m.var(0) & m.var(1)) | (m.var(2) ^ m.var(3));
    const bdd c = m.var(0) | m.var(4);
    const bdd g = m.constrain(f, c);
    EXPECT_EQ(g & c, f & c);
    // constrain by 1 is identity; constrain of constants
    EXPECT_EQ(m.constrain(f, m.one()), f);
    EXPECT_EQ(m.constrain(m.one(), c), m.one());
    EXPECT_EQ(m.constrain(m.zero(), c), m.zero());
    // constrain(f, f) = 1
    EXPECT_EQ(m.constrain(f, f), m.one());
}

TEST(bdd_gencof, restrict_agrees_and_often_shrinks) {
    bdd_manager m(6);
    const bdd f = (m.var(1) & m.var(2)) | (m.var(3) & m.var(4));
    // care set constrains var0 (absent from f) and var1
    const bdd c = (m.var(0) | m.var(1)) & m.var(3);
    const bdd g = m.restrict_dc(f, c);
    EXPECT_EQ(g & c, f & c);
    EXPECT_LE(m.dag_size(g), m.dag_size(f) + 1);
    // unlike constrain, restrict never introduces variables absent from f
    for (const std::uint32_t v : m.support(g)) {
        const auto sup = m.support(f);
        EXPECT_NE(std::find(sup.begin(), sup.end(), v), sup.end())
            << "restrict introduced variable " << v;
    }
}

class bdd_gencof_property : public ::testing::TestWithParam<unsigned> {};

TEST_P(bdd_gencof_property, generalized_cofactor_identities) {
    std::mt19937 rng(GetParam());
    constexpr std::uint32_t nvars = 5;
    bdd_manager m(nvars);
    std::vector<bool> tf(1u << nvars), tc(1u << nvars);
    bool any_care = false;
    for (std::size_t r = 0; r < tf.size(); ++r) {
        tf[r] = (rng() & 1) != 0;
        tc[r] = (rng() & 1) != 0;
        any_care |= tc[r];
    }
    if (!any_care) { tc[0] = true; }
    const bdd f = from_truth_table(m, tf, nvars);
    const bdd c = from_truth_table(m, tc, nvars);
    const bdd cons = m.constrain(f, c);
    const bdd rest = m.restrict_dc(f, c);
    // both are valid don't-care covers of f with care set c
    EXPECT_EQ(cons & c, f & c);
    EXPECT_EQ(rest & c, f & c);
    // idempotence on the care set
    EXPECT_EQ(m.constrain(cons, c) & c, f & c);
}

INSTANTIATE_TEST_SUITE_P(random_seeds, bdd_gencof_property,
                         ::testing::Range(100u, 115u));

} // namespace
