/// \file test_net.cpp
/// \brief Tests for networks, BLIF I/O, BDD sweeps, latch splitting and the
/// circuit generators.

#include "gen/scenario.hpp"
#include "net/blif.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"
#include "net/netbdd.hpp"
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace {

using namespace leq;

// ---------------------------------------------------------------------------
// network structure
// ---------------------------------------------------------------------------

TEST(network_basic, paper_example_shape) {
    const network net = make_paper_example();
    EXPECT_EQ(net.num_inputs(), 1u);
    EXPECT_EQ(net.num_outputs(), 1u);
    EXPECT_EQ(net.num_latches(), 2u);
    EXPECT_EQ(net.initial_state(), (std::vector<bool>{false, false}));
}

TEST(network_basic, simulate_paper_example) {
    // T1 = i & cs2, T2 = !i | cs1, o = cs1 & cs2; from (0,0) under i=0 the
    // next state is (0,1) and the output is 0 (paper, Figure 3).
    const network net = make_paper_example();
    const auto r = net.simulate({false, false}, {false});
    EXPECT_EQ(r.outputs, (std::vector<bool>{false}));
    EXPECT_EQ(r.next_state, (std::vector<bool>{false, true}));
    // from (1,1): o = 1
    const auto r2 = net.simulate({true, true}, {false});
    EXPECT_EQ(r2.outputs, (std::vector<bool>{true}));
}

TEST(network_basic, validate_rejects_multiple_drivers) {
    network net;
    net.add_input("a");
    net.add_output("y");
    net.add_node("y", {"a"}, {"1"});
    EXPECT_THROW(net.add_node("y", {"a"}, {"0"}), std::invalid_argument);
}

TEST(network_basic, validate_rejects_undriven_output) {
    network net;
    net.add_input("a");
    net.add_output("y"); // y never driven
    EXPECT_THROW(net.validate(), std::runtime_error);
}

TEST(network_basic, validate_rejects_combinational_cycle) {
    network net;
    net.add_input("a");
    net.add_output("y");
    net.add_node("y", {"z"}, {"1"});
    net.add_node("z", {"y"}, {"1"});
    EXPECT_THROW(net.validate(), std::runtime_error);
}

TEST(network_basic, topo_order_respects_dependencies) {
    network net;
    net.add_input("a");
    net.add_output("y");
    net.add_node("m", {"a"}, {"1"});
    net.add_node("y", {"m"}, {"0"}, true);
    const auto order = net.topo_order();
    std::size_t pos_a = 0, pos_m = 0, pos_y = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
        if (net.signal_name(order[k]) == "a") { pos_a = k; }
        if (net.signal_name(order[k]) == "m") { pos_m = k; }
        if (net.signal_name(order[k]) == "y") { pos_y = k; }
    }
    EXPECT_LT(pos_a, pos_m);
    EXPECT_LT(pos_m, pos_y);
}

TEST(network_basic, complemented_cover_is_offset) {
    network net;
    net.add_input("a");
    net.add_input("b");
    net.add_output("y");
    // off-set {11} => y = !(a & b)
    net.add_node("y", {"a", "b"}, {"11"}, true);
    EXPECT_FALSE(net.simulate({}, {true, true}).outputs[0]);
    EXPECT_TRUE(net.simulate({}, {true, false}).outputs[0]);
    EXPECT_TRUE(net.simulate({}, {false, false}).outputs[0]);
}

// ---------------------------------------------------------------------------
// BLIF
// ---------------------------------------------------------------------------

TEST(blif_io, parse_minimal_model) {
    const std::string text = R"(
# a comment
.model toy
.inputs a b
.outputs y
.latch ny q 1
.names a b t
11 1
.names t q ny
1- 1
-1 1
.names t y
0 1
.end
)";
    const network net = read_blif_string(text);
    EXPECT_EQ(net.name(), "toy");
    EXPECT_EQ(net.num_inputs(), 2u);
    EXPECT_EQ(net.num_outputs(), 1u);
    EXPECT_EQ(net.num_latches(), 1u);
    EXPECT_TRUE(net.latches()[0].init);
    // y = !(a&b)
    EXPECT_TRUE(net.simulate({false}, {true, false}).outputs[0]);
    EXPECT_FALSE(net.simulate({false}, {true, true}).outputs[0]);
}

TEST(blif_io, line_continuation_and_constants) {
    const std::string text =
        ".model k\n.inputs a\n.outputs y z\n"
        ".names a \\\ny\n1 1\n"
        ".names z\n1\n"
        ".end\n";
    const network net = read_blif_string(text);
    EXPECT_TRUE(net.simulate({}, {true}).outputs[0]);
    EXPECT_TRUE(net.simulate({}, {false}).outputs[1]); // constant 1
}

TEST(blif_io, rejects_mixed_onset_offset) {
    const std::string text =
        ".model bad\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n";
    EXPECT_THROW(read_blif_string(text), std::runtime_error);
}

TEST(blif_io, rejects_bad_cube_width) {
    const std::string text =
        ".model bad\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n";
    EXPECT_THROW(read_blif_string(text), std::runtime_error);
}

TEST(blif_io, round_trip_preserves_behaviour) {
    const network original = make_traffic_controller();
    const network reparsed = read_blif_string(write_blif_string(original));
    EXPECT_EQ(reparsed.num_inputs(), original.num_inputs());
    EXPECT_EQ(reparsed.num_outputs(), original.num_outputs());
    EXPECT_EQ(reparsed.num_latches(), original.num_latches());
    // behavioural equivalence on random stimulus
    std::mt19937 rng(7);
    std::vector<bool> s1 = original.initial_state();
    std::vector<bool> s2 = reparsed.initial_state();
    EXPECT_EQ(s1, s2);
    for (int step = 0; step < 200; ++step) {
        std::vector<bool> in(original.num_inputs());
        for (auto&& b : in) { b = (rng() & 1) != 0; }
        const auto r1 = original.simulate(s1, in);
        const auto r2 = reparsed.simulate(s2, in);
        ASSERT_EQ(r1.outputs, r2.outputs);
        s1 = r1.next_state;
        s2 = r2.next_state;
    }
}

// ---------------------------------------------------------------------------
// BDD sweep vs simulator (property test over circuit families)
// ---------------------------------------------------------------------------

class netbdd_property : public ::testing::TestWithParam<int> {};

TEST_P(netbdd_property, bdd_sweep_matches_simulator) {
    const network net = make_menu_circuit(GetParam(), /*salt=*/2);
    bdd_manager mgr(
        static_cast<std::uint32_t>(net.num_inputs() + net.num_latches()));
    std::vector<std::uint32_t> in_vars, st_vars;
    for (std::size_t k = 0; k < net.num_inputs(); ++k) {
        in_vars.push_back(static_cast<std::uint32_t>(k));
    }
    for (std::size_t k = 0; k < net.num_latches(); ++k) {
        st_vars.push_back(static_cast<std::uint32_t>(net.num_inputs() + k));
    }
    const net_bdds fns = build_net_bdds(mgr, net, in_vars, st_vars);
    ASSERT_EQ(fns.outputs.size(), net.num_outputs());
    ASSERT_EQ(fns.next_state.size(), net.num_latches());

    std::mt19937 rng(42 + GetParam());
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<bool> in(net.num_inputs()), st(net.num_latches());
        for (auto&& b : in) { b = (rng() & 1) != 0; }
        for (auto&& b : st) { b = (rng() & 1) != 0; }
        const auto ref = net.simulate(st, in);
        std::vector<bool> assignment(mgr.num_vars());
        for (std::size_t k = 0; k < in.size(); ++k) {
            assignment[in_vars[k]] = in[k];
        }
        for (std::size_t k = 0; k < st.size(); ++k) {
            assignment[st_vars[k]] = st[k];
        }
        for (std::size_t j = 0; j < net.num_outputs(); ++j) {
            ASSERT_EQ(mgr.eval(fns.outputs[j], assignment), ref.outputs[j])
                << "output " << j << " circuit " << GetParam();
        }
        for (std::size_t k = 0; k < net.num_latches(); ++k) {
            ASSERT_EQ(mgr.eval(fns.next_state[k], assignment),
                      ref.next_state[k])
                << "latch " << k << " circuit " << GetParam();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(circuit_families, netbdd_property,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// latch splitting
// ---------------------------------------------------------------------------

/// Composing F with X_P by wiring u/v positionally must reproduce the
/// original circuit cycle-by-cycle.
void check_split_composition(const network& original,
                             const std::vector<std::size_t>& x_latches) {
    const split_result split = split_latches(original, x_latches);
    EXPECT_EQ(split.fixed.num_inputs(),
              original.num_inputs() + x_latches.size());
    EXPECT_EQ(split.fixed.num_outputs(),
              original.num_outputs() + x_latches.size());
    EXPECT_EQ(split.fixed.num_latches(),
              original.num_latches() - x_latches.size());
    EXPECT_EQ(split.part.num_latches(), x_latches.size());

    std::mt19937 rng(5);
    std::vector<bool> s_orig = original.initial_state();
    std::vector<bool> s_f = split.fixed.initial_state();
    std::vector<bool> s_x = split.part.initial_state();
    for (int step = 0; step < 300; ++step) {
        std::vector<bool> in(original.num_inputs());
        for (auto&& b : in) { b = (rng() & 1) != 0; }
        const auto ref = original.simulate(s_orig, in);

        // F inputs: original inputs then v (X_P outputs = its state)
        const auto xout = split.part.simulate(s_x, std::vector<bool>(
            split.part.num_inputs(), false)); // outputs independent of inputs
        std::vector<bool> f_in = in;
        for (const bool v : xout.outputs) { f_in.push_back(v); }
        const auto fres = split.fixed.simulate(s_f, f_in);
        // original outputs are the first |o| outputs of F
        for (std::size_t j = 0; j < original.num_outputs(); ++j) {
            ASSERT_EQ(fres.outputs[j], ref.outputs[j]) << "step " << step;
        }
        // X_P consumes u = trailing outputs of F
        std::vector<bool> u(fres.outputs.end() -
                                static_cast<std::ptrdiff_t>(x_latches.size()),
                            fres.outputs.end());
        const auto xres = split.part.simulate(s_x, u);
        s_orig = ref.next_state;
        s_f = fres.next_state;
        s_x = xres.next_state;
    }
}

TEST(latch_split, composition_reproduces_original_counter) {
    check_split_composition(make_counter(6), {0, 2, 4});
}

TEST(latch_split, composition_reproduces_original_lfsr) {
    check_split_composition(make_lfsr(6, {2, 4}), {3, 4, 5});
}

TEST(latch_split, composition_reproduces_original_random) {
    check_split_composition(make_random_net(99, 3, 2, 6, 4), {1, 3, 5});
}

TEST(latch_split, split_last_latches_matches_explicit_indices) {
    const network net = make_counter(5);
    const split_result a = split_last_latches(net, 2);
    const split_result b = split_latches(net, {3, 4});
    EXPECT_EQ(a.u_names, b.u_names);
    EXPECT_EQ(a.v_names, b.v_names);
}

TEST(latch_split, rejects_bad_indices) {
    const network net = make_counter(3);
    EXPECT_THROW(split_latches(net, {7}), std::invalid_argument);
    EXPECT_THROW(split_latches(net, {1, 1}), std::invalid_argument);
    EXPECT_THROW(split_last_latches(net, 9), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

TEST(generator, counter_counts) {
    const network net = make_counter(3);
    std::vector<bool> s = net.initial_state();
    // 7 enabled steps: state = 7, carry on the 8th
    for (int k = 0; k < 7; ++k) {
        const auto r = net.simulate(s, {true, false});
        EXPECT_FALSE(net.simulate(s, {true, false}).outputs[0] && k < 6);
        s = r.next_state;
    }
    EXPECT_EQ(s, (std::vector<bool>{true, true, true}));
    EXPECT_TRUE(net.simulate(s, {true, false}).outputs[0]); // carry
    // clear resets
    const auto r = net.simulate(s, {true, true});
    EXPECT_EQ(r.next_state, (std::vector<bool>{false, false, false}));
}

TEST(generator, lfsr_cycles_through_nonzero_states) {
    const network net = make_lfsr(4, {1});
    std::vector<bool> s = net.initial_state();
    std::set<std::vector<bool>> seen;
    for (int k = 0; k < 32; ++k) {
        seen.insert(s);
        s = net.simulate(s, {true}).next_state;
        EXPECT_NE(s, (std::vector<bool>(4, false))) << "LFSR locked at zero";
    }
    EXPECT_GT(seen.size(), 4u);
}

TEST(generator, traffic_controller_cycles) {
    const network net = make_traffic_controller();
    std::vector<bool> s = net.initial_state(); // HG
    auto out = net.simulate(s, {false, false}).outputs;
    EXPECT_TRUE(out[0]);  // hw_green
    EXPECT_FALSE(out[2]); // fm_green off
    // car + timer: HG -> HY -> AR -> FG
    s = net.simulate(s, {true, true}).next_state;
    EXPECT_TRUE(net.simulate(s, {true, true}).outputs[1]); // hw_yellow
    s = net.simulate(s, {true, true}).next_state;           // AR
    s = net.simulate(s, {true, true}).next_state;           // FG
    EXPECT_TRUE(net.simulate(s, {true, false}).outputs[2]); // fm_green
}

TEST(generator, table1_suite_matches_paper_dimensions) {
    const auto suite = make_table1_suite();
    ASSERT_EQ(suite.size(), 6u);
    const auto expect_dims = [&](std::size_t k, std::size_t i, std::size_t o,
                                 std::size_t cs, std::size_t fcs,
                                 std::size_t xcs) {
        EXPECT_EQ(suite[k].circuit.num_inputs(), i) << suite[k].name;
        EXPECT_EQ(suite[k].circuit.num_outputs(), o) << suite[k].name;
        EXPECT_EQ(suite[k].circuit.num_latches(), cs) << suite[k].name;
        EXPECT_EQ(suite[k].f_latches, fcs) << suite[k].name;
        EXPECT_EQ(suite[k].x_latches, xcs) << suite[k].name;
        EXPECT_EQ(fcs + xcs, cs) << suite[k].name;
    };
    expect_dims(0, 19, 7, 6, 3, 3);
    expect_dims(1, 10, 1, 8, 4, 4);
    expect_dims(2, 3, 6, 14, 7, 7);
    expect_dims(3, 9, 11, 15, 5, 10);
    expect_dims(4, 3, 6, 21, 5, 16);
    expect_dims(5, 3, 6, 21, 5, 16);
}

TEST(generator, deterministic_for_fixed_seed) {
    random_spec spec;
    spec.seed = 77;
    const network a = make_random_sequential(spec);
    const network b = make_random_sequential(spec);
    EXPECT_EQ(write_blif_string(a), write_blif_string(b));
}

} // namespace
