/// \file test_resynth.cpp
/// \brief End-to-end resynthesis: Moore extraction, Moore-aware encoding,
/// composition and the equivalence checks.

#include "automata/encode.hpp"
#include "eq/resynth.hpp"
#include "eq/solver.hpp"
#include "eq/subsolution.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

namespace {

using namespace leq;

struct solved {
    network original;
    split_result split;
    equation_problem problem;
    solve_result result;

    solved(network net, const std::vector<std::size_t>& cut)
        : original(std::move(net)), split(split_latches(original, cut)),
          problem(split.fixed, original),
          result(solve_partitioned(problem)) {}
};

// ---------------------------------------------------------------------------
// Moore extraction
// ---------------------------------------------------------------------------

TEST(moore_extract, result_is_moore_and_contained) {
    solved s(make_counter(3), {2});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const auto fsm =
        extract_moore_fsm(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    ASSERT_TRUE(fsm.has_value());
    bdd_manager& mgr = s.problem.mgr();
    const bdd u_cube = mgr.cube(s.problem.u_vars);
    const bdd v_cube = mgr.cube(s.problem.v_vars);
    for (std::uint32_t q = 0; q < fsm->num_states(); ++q) {
        // single v assignment per state...
        const bdd vs = mgr.exists(fsm->domain(q), u_cube);
        EXPECT_EQ(mgr.sat_count(
                      vs, static_cast<std::uint32_t>(s.problem.v_vars.size())),
                  1.0)
            << "state " << q;
        // ...and every u covered under it (progressive)
        EXPECT_TRUE(mgr.forall(mgr.exists(fsm->domain(q), v_cube), u_cube)
                        .is_one())
            << "state " << q;
    }
    EXPECT_TRUE(language_contained(*fsm, *s.result.csf));
    EXPECT_TRUE(is_deterministic(*fsm));
}

TEST(moore_extract, throws_on_empty_csf) {
    solved s(make_counter(3), {2});
    automaton empty(s.problem.mgr(), s.result.csf->label_vars());
    empty.add_state(false);
    empty.set_initial(0);
    EXPECT_THROW(
        (void)extract_moore_fsm(empty, s.problem.u_vars, s.problem.v_vars),
        std::invalid_argument);
}

TEST(moore_extract, nullopt_when_no_uniform_v_exists) {
    // CSF that forces v to copy u in the same step: no u-independent choice
    solved s(make_counter(3), {2}); // borrow a manager/problem
    bdd_manager& mgr = s.problem.mgr();
    automaton mealy_only(mgr, s.result.csf->label_vars());
    mealy_only.add_state(true);
    mealy_only.set_initial(0);
    bdd copy = mgr.one();
    for (std::size_t m = 0; m < s.problem.u_vars.size(); ++m) {
        copy &= mgr.var(s.problem.u_vars[m]).iff(mgr.var(s.problem.v_vars[m]));
    }
    mealy_only.add_transition(0, 0, copy);
    EXPECT_FALSE(
        extract_moore_fsm(mealy_only, s.problem.u_vars, s.problem.v_vars)
            .has_value());
}

// ---------------------------------------------------------------------------
// Moore-aware encoding composes without cycles
// ---------------------------------------------------------------------------

TEST(moore_encode, moore_outputs_do_not_read_u) {
    solved s(make_counter(4), {3});
    ASSERT_EQ(s.result.status, solve_status::ok);
    const auto fsm =
        extract_moore_fsm(*s.result.csf, s.problem.u_vars, s.problem.v_vars);
    ASSERT_TRUE(fsm.has_value());
    const network net = automaton_to_network(
        *fsm, s.problem.u_vars, s.problem.v_vars, s.split.u_names,
        s.split.v_names, "x_moore");
    // behavioural check: with the state fixed, changing u must not change v
    const std::vector<bool> state(net.num_latches(), false);
    std::vector<bool> in0(net.num_inputs(), false);
    std::vector<bool> in1(net.num_inputs(), true);
    EXPECT_EQ(net.simulate(state, in0).outputs,
              net.simulate(state, in1).outputs);
}

// ---------------------------------------------------------------------------
// the full pipeline
// ---------------------------------------------------------------------------

class resynth_families : public ::testing::TestWithParam<int> {};

TEST_P(resynth_families, pipeline_is_sound) {
    const int id = GetParam();
    const network net = id == 0   ? make_counter(3)
                        : id == 1 ? make_counter(4)
                        : id == 2 ? make_traffic_controller()
                        : id == 3 ? make_shift_xor(3)
                        : id == 4 ? make_paper_example()
                                  : make_lfsr(4, {1});
    const resynth_result r =
        resynthesize(net, {net.num_latches() - 1});
    ASSERT_TRUE(r.solved) << net.name();
    if (!r.rebuilt) { GTEST_SKIP() << "no greedy Moore sub-solution"; }
    EXPECT_TRUE(r.verified) << net.name();
    EXPECT_EQ(r.optimized.num_inputs(), net.num_inputs());
    EXPECT_EQ(r.optimized.num_outputs(), net.num_outputs());
    EXPECT_GT(r.x_states, 0u);
    // the independent check the caller would run
    EXPECT_TRUE(simulation_equivalent(net, r.optimized, 4, 128, 99));
}

INSTANTIATE_TEST_SUITE_P(families, resynth_families,
                         ::testing::Range(0, 6));

TEST(resynth, two_latch_cut) {
    const network net = make_counter(4);
    const resynth_result r = resynthesize(net, {2, 3});
    ASSERT_TRUE(r.solved);
    EXPECT_EQ(r.x_latches_before, 2u);
    if (r.rebuilt) {
        EXPECT_TRUE(r.verified);
        EXPECT_TRUE(simulation_equivalent(net, r.optimized, 4, 128, 7));
    }
}

TEST(resynth, unminimized_option_still_verifies) {
    const network net = make_counter(3);
    resynth_options options;
    options.minimize_states = false;
    const resynth_result r = resynthesize(net, {2}, options);
    ASSERT_TRUE(r.solved);
    if (r.rebuilt) { EXPECT_TRUE(r.verified); }
}

TEST(resynth, minimization_never_grows_the_replacement) {
    const network net = make_traffic_controller();
    resynth_options raw, min;
    raw.minimize_states = false;
    const resynth_result a = resynthesize(net, {1}, raw);
    const resynth_result b = resynthesize(net, {1}, min);
    if (a.rebuilt && b.rebuilt) {
        EXPECT_LE(b.x_states, a.x_states);
        EXPECT_LE(b.x_latches_after, a.x_latches_after);
    }
}

TEST(resynth, simulation_equivalence_detects_differences) {
    // identical interfaces, different behaviour: a delay vs an inverted delay
    const auto make = [](bool invert) {
        network net(invert ? "ndelay" : "delay");
        net.add_input("a");
        net.add_latch("a", "s", false);
        net.add_node("z", {"s"}, {invert ? "0" : "1"});
        net.add_output("z");
        net.validate();
        return net;
    };
    const network a = make(false);
    const network b = make(true);
    EXPECT_FALSE(simulation_equivalent(a, b, 4, 64, 3));
    EXPECT_TRUE(simulation_equivalent(a, a, 4, 64, 3));
    // interface mismatch is a difference
    EXPECT_FALSE(simulation_equivalent(a, make_counter(3), 4, 64, 3));
}

} // namespace
