/// \file test_eq.cpp
/// \brief Integration tests for the language-equation solver: the
/// partitioned flow, the monolithic baseline and the explicit Algorithm-1
/// oracle must agree, and every solution must pass the paper's checks.

#include "eq/solver.hpp"
#include "eq/verify.hpp"
#include "gen/scenario.hpp"
#include "net/generator.hpp"
#include "net/latch_split.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace leq;

struct instance {
    network original;
    split_result split;
    instance(network net, const std::vector<std::size_t>& x_latches)
        : original(std::move(net)),
          split(split_latches(original, x_latches)) {}
};

void check_flows_agree(const instance& inst, bool with_oracle = true) {
    const equation_problem problem(inst.split.fixed, inst.original);
    const solve_result part = solve_partitioned(problem);
    const solve_result mono = solve_monolithic(problem);
    ASSERT_EQ(part.status, solve_status::ok);
    ASSERT_EQ(mono.status, solve_status::ok);
    ASSERT_TRUE(part.csf.has_value());
    ASSERT_TRUE(mono.csf.has_value());
    EXPECT_FALSE(part.empty_solution)
        << "latch splitting always admits X_P itself";
    EXPECT_TRUE(language_equivalent(*part.csf, *mono.csf))
        << inst.original.name();
    if (with_oracle) {
        const solve_result oracle =
            solve_explicit(problem, inst.split.fixed, inst.original);
        EXPECT_TRUE(language_equivalent(*part.csf, *oracle.csf))
            << inst.original.name();
    }
    // the paper's verification: (1) X_P <= X, (2) F . X <= S
    EXPECT_TRUE(verify_particular_contained(
        problem, *part.csf, inst.split.part.initial_state()))
        << inst.original.name();
    EXPECT_TRUE(verify_composition_contained(problem, *part.csf))
        << inst.original.name();
}

TEST(eq_flows, paper_example_split_one_latch) {
    check_flows_agree(instance(make_paper_example(), {1}));
}

TEST(eq_flows, paper_example_split_other_latch) {
    check_flows_agree(instance(make_paper_example(), {0}));
}

TEST(eq_flows, counter_splits) {
    check_flows_agree(instance(make_counter(3), {2}));
    check_flows_agree(instance(make_counter(3), {0, 1}));
}

TEST(eq_flows, lfsr_split) {
    check_flows_agree(instance(make_lfsr(4, {1}), {2, 3}));
}

TEST(eq_flows, traffic_controller_split) {
    check_flows_agree(instance(make_traffic_controller(), {1}));
}

TEST(eq_flows, shift_xor_split) {
    check_flows_agree(instance(make_shift_xor(3), {1, 2}));
}

class eq_random_property : public ::testing::TestWithParam<unsigned> {};

TEST_P(eq_random_property, flows_agree_on_random_circuits) {
    const std::uint32_t seed = test_seed(2000 + GetParam());
    SCOPED_TRACE("seed " + std::to_string(seed));
    const network net = make_random_net(seed, 2, 2, 3, 4);
    // split one latch; oracle stays tractable (2+1 inputs, 2+1 outputs)
    check_flows_agree(instance(net, {2}));
}

INSTANTIATE_TEST_SUITE_P(random_seeds, eq_random_property,
                         ::testing::Range(0u, 8u));

class eq_random_two_latch : public ::testing::TestWithParam<unsigned> {};

TEST_P(eq_random_two_latch, symbolic_flows_agree_without_oracle) {
    const std::uint32_t seed = test_seed(3000 + GetParam());
    SCOPED_TRACE("seed " + std::to_string(seed));
    const network net = make_random_net(seed, 3, 2, 5, 4);
    check_flows_agree(instance(net, {2, 4}), /*with_oracle=*/false);
}

INSTANTIATE_TEST_SUITE_P(random_seeds, eq_random_two_latch,
                         ::testing::Range(0u, 6u));

TEST(eq_flows, monolithic_trimming_ablation_same_language) {
    const instance inst(make_counter(4), {1, 3});
    const equation_problem problem(inst.split.fixed, inst.original);
    solve_options trim, no_trim;
    no_trim.trim_nonconforming = false;
    const solve_result a = solve_monolithic(problem, trim);
    const solve_result b = solve_monolithic(problem, no_trim);
    ASSERT_EQ(a.status, solve_status::ok);
    ASSERT_EQ(b.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*a.csf, *b.csf));
    // without trimming at least as many subsets are explored
    EXPECT_GE(b.subset_states_explored, a.subset_states_explored);
}

TEST(eq_flows, image_scheduling_ablation_same_language) {
    const instance inst(make_lfsr(5, {2}), {3, 4});
    const equation_problem problem(inst.split.fixed, inst.original);
    solve_options early, naive;
    naive.img.early_quantification = false;
    const solve_result a = solve_partitioned(problem, early);
    const solve_result b = solve_partitioned(problem, naive);
    ASSERT_EQ(a.status, solve_status::ok);
    ASSERT_EQ(b.status, solve_status::ok);
    EXPECT_TRUE(language_equivalent(*a.csf, *b.csf));
}

TEST(eq_limits, time_limit_reports_timeout) {
    const auto suite = make_table1_suite();
    const split_result split =
        split_last_latches(suite[4].circuit, suite[4].x_latches); // s444-like
    const equation_problem problem(split.fixed, suite[4].circuit);
    solve_options options;
    options.time_limit_seconds = 1e-4; // effectively immediate
    const solve_result r = solve_partitioned(problem, options);
    EXPECT_EQ(r.status, solve_status::timeout);
    EXPECT_FALSE(r.csf.has_value());
}

TEST(eq_limits, state_limit_reports_limit) {
    const instance inst(make_counter(6), {0, 1, 2, 3});
    const equation_problem problem(inst.split.fixed, inst.original);
    solve_options options;
    options.max_subset_states = 2;
    const solve_result r = solve_partitioned(problem, options);
    EXPECT_EQ(r.status, solve_status::state_limit);
}

TEST(eq_empty, unsatisfiable_specification_yields_empty_csf) {
    // F: o = i and u = i, X cannot influence o at all; S demands o = !i.
    // Every (u,v) label is achievable (choose i = u) and every achieved
    // step violates S, so Q covers the whole (u,v) space, the progressive
    // step kills the initial state, and no solution exists.  (With u tied
    // to v instead, unachievable labels would escape to DCA and a vacuous,
    // non-compositionally-progressive X would survive — the phenomenon of
    // the paper's footnote 5.)
    network f("f");
    f.add_input("i");
    f.add_input("v0");
    f.add_output("o");
    f.add_output("u0");
    f.add_node("o", {"i"}, {"1"});
    f.add_node("u0", {"i"}, {"1"});
    f.validate();
    network s("s");
    s.add_input("i");
    s.add_output("o");
    s.add_latch("n0", "q0", false);
    s.add_node("o", {"i"}, {"0"});
    s.add_node("n0", {"q0"}, {"1"});
    s.validate();
    const equation_problem problem(f, s);
    const solve_result part = solve_partitioned(problem);
    const solve_result mono = solve_monolithic(problem);
    EXPECT_TRUE(part.empty_solution);
    EXPECT_TRUE(mono.empty_solution);
}

TEST(eq_trivial, unconstrained_unknown_gets_universal_csf) {
    // F: o = i (X's ports do not influence o); every X conforms, the CSF is
    // the universal prefix-closed language over (u,v)
    network f("f");
    f.add_input("i");
    f.add_input("v0");
    f.add_output("o");
    f.add_output("u0");
    f.add_node("o", {"i"}, {"1"});
    f.add_node("u0", {"v0"}, {"1"});
    f.validate();
    network s("s");
    s.add_input("i");
    s.add_output("o");
    s.add_latch("n0", "q0", false);
    s.add_node("o", {"i"}, {"1"});
    s.add_node("n0", {"q0"}, {"1"});
    s.validate();
    const equation_problem problem(f, s);
    const solve_result part = solve_partitioned(problem);
    ASSERT_EQ(part.status, solve_status::ok);
    EXPECT_FALSE(part.empty_solution);
    // universal language: every (u,v) always allowed
    for (std::uint32_t q = 0; q < part.csf->num_states(); ++q) {
        EXPECT_TRUE(part.csf->domain(q).is_one());
    }
}

} // namespace

namespace {

using namespace leq;

/// Build a letter (full assignment) for the (u, v) label variables.
std::vector<bool> uv_letter(const equation_problem& p,
                            const std::vector<bool>& u,
                            const std::vector<bool>& v) {
    std::vector<bool> letter(p.mgr().num_vars(), false);
    for (std::size_t m = 0; m < u.size(); ++m) { letter[p.u_vars[m]] = u[m]; }
    for (std::size_t m = 0; m < v.size(); ++m) { letter[p.v_vars[m]] = v[m]; }
    return letter;
}

TEST(eq_language, csf_accepts_exactly_the_particular_solutions_traces) {
    // the paper's example: X_P is latch #1, so its legal traces satisfy
    // v_t = u_{t-1} with v_0 = 0 (the latch's reset value); every prefix of
    // such a trace must be in the CSF
    const instance inst(make_paper_example(), {1});
    const equation_problem problem(inst.split.fixed, inst.original);
    const solve_result r = solve_partitioned(problem);
    ASSERT_EQ(r.status, solve_status::ok);
    const automaton& csf = *r.csf;

    std::mt19937 rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::vector<bool>> word;
        bool state = false; // latch initial value
        const int len = 1 + static_cast<int>(rng() % 8);
        for (int t = 0; t < len; ++t) {
            const bool u = (rng() & 1) != 0;
            word.push_back(uv_letter(problem, {u}, {state}));
            state = u;
        }
        EXPECT_TRUE(accepts(csf, word)) << "X_P trace rejected, trial "
                                        << trial;
    }
    // a trace that lies about the first v (latch resets to 0, claiming v=1
    // in step one is not X_P behaviour, but may still be allowed by the
    // flexibility); the CSF must at least be prefix-closed: any accepted
    // word's prefixes are accepted
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::vector<bool>> word;
        const int len = 2 + static_cast<int>(rng() % 6);
        for (int t = 0; t < len; ++t) {
            word.push_back(uv_letter(problem, {(rng() & 1) != 0},
                                     {(rng() & 1) != 0}));
        }
        if (accepts(csf, word)) {
            for (std::size_t cut = 0; cut < word.size(); ++cut) {
                std::vector<std::vector<bool>> prefix(word.begin(),
                                                      word.begin() + cut);
                EXPECT_TRUE(accepts(csf, prefix)) << "prefix-closure broken";
            }
        }
    }
}

TEST(eq_language, csf_is_input_progressive_walk) {
    // from any accepted word, for every next u some v must extend the word
    const instance inst(make_traffic_controller(), {1});
    const equation_problem problem(inst.split.fixed, inst.original);
    const solve_result r = solve_partitioned(problem);
    ASSERT_EQ(r.status, solve_status::ok);
    const automaton& csf = *r.csf;

    std::mt19937 rng(9);
    std::vector<std::vector<bool>> word;
    for (int step = 0; step < 30; ++step) {
        const bool u = (rng() & 1) != 0;
        bool extended = false;
        for (const bool v : {false, true}) {
            word.push_back(uv_letter(problem, {u}, {v}));
            if (accepts(csf, word)) {
                extended = true;
                break;
            }
            word.pop_back();
        }
        ASSERT_TRUE(extended) << "not input-progressive at step " << step;
    }
}

} // namespace


namespace {

using namespace leq;

TEST(eq_canonical, minimized_csfs_of_both_flows_are_isomorphic_in_size) {
    // the minimal DFA of a language is unique, so after minimization the
    // two flows must produce state-identical automata even when their raw
    // subset constructions differ
    for (int id = 0; id < 3; ++id) {
        const network net = id == 0   ? make_counter(4)
                            : id == 1 ? make_traffic_controller()
                                      : make_lfsr(4, {1});
        const instance inst(net, {net.num_latches() - 1});
        const equation_problem problem(inst.split.fixed, inst.original);
        const solve_result part = solve_partitioned(problem);
        const solve_result mono = solve_monolithic(problem);
        ASSERT_EQ(part.status, solve_status::ok);
        ASSERT_EQ(mono.status, solve_status::ok);
        ASSERT_TRUE(is_deterministic(*part.csf));
        ASSERT_TRUE(is_deterministic(*mono.csf));
        const automaton a = minimize(*part.csf);
        const automaton b = minimize(*mono.csf);
        EXPECT_EQ(a.num_states(), b.num_states()) << "circuit " << id;
        EXPECT_TRUE(language_equivalent(a, b)) << "circuit " << id;
    }
}

TEST(eq_canonical, csf_is_deterministic_across_families) {
    for (int id = 0; id < 5; ++id) {
        const network net = make_menu_circuit(id);
        const instance inst(net, {net.num_latches() - 1});
        const equation_problem problem(inst.split.fixed, inst.original);
        const solve_result r = solve_partitioned(problem);
        ASSERT_EQ(r.status, solve_status::ok);
        EXPECT_TRUE(is_deterministic(*r.csf)) << id;
    }
}

} // namespace
