// Seeded violation: a project include that is not layer-qualified.
#include "solver.hpp"

int fixture_style() { return 2; }
