// Clean file: the fixture config sanctions concurrency here ('allow
// concurrency src/cli/batch.cpp'), so neither the header nor the tokens
// may be reported.
#include <atomic>
#include <thread>

namespace fixture {

std::atomic<int> counter{0};

void spin() { std::thread([] { counter.fetch_add(1); }).join(); }

} // namespace fixture
