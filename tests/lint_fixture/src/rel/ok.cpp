// Clean file: rel -> bdd is a sanctioned edge in the fixture config, so
// this must produce no violations.
#include "bdd/bdd.hpp"

int fixture_ok() { return 1; }
