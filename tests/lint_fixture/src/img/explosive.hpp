// Seeded violations: header without #pragma once, a throwing destructor,
// and a header-scope using-namespace.

using namespace std;

namespace fixture {

struct explosive {
    bool armed = false;
    ~explosive() {
        if (armed) { throw 42; }
    }
    // a bitwise NOT that looks destructor-ish must NOT be reported:
    unsigned mask() const { return ~value(); }
    unsigned value() const { return 7; }
};

} // namespace fixture
