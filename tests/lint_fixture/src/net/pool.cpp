// Seeded violations: a concurrency header and a concurrency token outside
// the sanctioned seam (only src/cli/batch.cpp is allowed).
#include <mutex>

namespace fixture {

struct pool {
    std::mutex guard;
    // mentioning std::thread in a comment must NOT be reported
    const char* label = "std::condition_variable in a string: not reported";
};

} // namespace fixture
