// Seeded violation: bdd/ reaching up into rel/ inverts the layer DAG
// (the fixture config only sanctions rel -> bdd).
#include "rel/relation.hpp"

// A commented-out include must NOT be reported:
// #include "eq/solver.hpp"

int fixture_upward() { return 0; }
